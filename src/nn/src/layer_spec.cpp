#include "mbd/nn/layer_spec.hpp"

#include "mbd/support/check.hpp"

namespace mbd::nn {

std::size_t LayerSpec::weight_count() const {
  switch (kind) {
    case LayerKind::Conv: return conv.weight_count();
    case LayerKind::FullyConnected: return fc_in * fc_out;
    case LayerKind::Pool: return 0;
  }
  return 0;
}

std::size_t LayerSpec::d_in() const {
  switch (kind) {
    case LayerKind::Conv:
    case LayerKind::Pool:
      return conv.in_c * conv.in_h * conv.in_w;
    case LayerKind::FullyConnected:
      return fc_in;
  }
  return 0;
}

std::size_t LayerSpec::d_out() const {
  switch (kind) {
    case LayerKind::Conv:
      return conv.out_c * conv.out_h() * conv.out_w();
    case LayerKind::Pool:
      return conv.in_c * conv.out_h() * conv.out_w();
    case LayerKind::FullyConnected:
      return fc_out;
  }
  return 0;
}

double LayerSpec::macs_per_sample() const {
  switch (kind) {
    case LayerKind::Conv:
      return static_cast<double>(conv.kernel_h * conv.kernel_w * conv.in_c) *
             static_cast<double>(conv.out_h() * conv.out_w() * conv.out_c);
    case LayerKind::FullyConnected:
      return static_cast<double>(fc_in) * static_cast<double>(fc_out);
    case LayerKind::Pool:
      return 0.0;
  }
  return 0.0;
}

LayerSpec conv_spec(std::string name, std::size_t in_c, std::size_t in_h,
                    std::size_t in_w, std::size_t out_c, std::size_t kernel,
                    std::size_t stride, std::size_t pad, bool relu) {
  LayerSpec s;
  s.kind = LayerKind::Conv;
  s.name = std::move(name);
  s.conv = tensor::ConvGeom{in_c, in_h, in_w, out_c, kernel, kernel, stride, pad};
  s.relu_after = relu;
  return s;
}

LayerSpec pool_spec(std::string name, std::size_t in_c, std::size_t in_h,
                    std::size_t in_w, std::size_t window, std::size_t stride) {
  LayerSpec s;
  s.kind = LayerKind::Pool;
  s.name = std::move(name);
  s.conv = tensor::ConvGeom{in_c, in_h, in_w, in_c, window, window, stride, 0};
  return s;
}

LayerSpec fc_spec(std::string name, std::size_t in_dim, std::size_t out_dim,
                  bool relu) {
  LayerSpec s;
  s.kind = LayerKind::FullyConnected;
  s.name = std::move(name);
  s.fc_in = in_dim;
  s.fc_out = out_dim;
  s.relu_after = relu;
  return s;
}

std::size_t total_weights(const std::vector<LayerSpec>& net) {
  std::size_t t = 0;
  for (const auto& l : net) t += l.weight_count();
  return t;
}

void check_chain(const std::vector<LayerSpec>& net) {
  for (std::size_t i = 0; i + 1 < net.size(); ++i) {
    MBD_CHECK_MSG(net[i].d_out() == net[i + 1].d_in(),
                  "layer '" << net[i].name << "' d_out=" << net[i].d_out()
                            << " does not chain into '" << net[i + 1].name
                            << "' d_in=" << net[i + 1].d_in());
  }
}

}  // namespace mbd::nn
