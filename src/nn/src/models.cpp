#include "mbd/nn/models.hpp"

#include "mbd/support/check.hpp"

namespace mbd::nn {

std::vector<LayerSpec> alexnet_spec() {
  std::vector<LayerSpec> net;
  // conv1: 3x227x227 -> 96x55x55 (11x11, stride 4)
  net.push_back(conv_spec("conv1", 3, 227, 227, 96, 11, 4, 0));
  net.push_back(pool_spec("pool1", 96, 55, 55, 3, 2));
  // conv2: 96x27x27 -> 256x27x27 (5x5, pad 2)
  net.push_back(conv_spec("conv2", 96, 27, 27, 256, 5, 1, 2));
  net.push_back(pool_spec("pool2", 256, 27, 27, 3, 2));
  // conv3: 256x13x13 -> 384x13x13 (3x3, pad 1)
  net.push_back(conv_spec("conv3", 256, 13, 13, 384, 3, 1, 1));
  // conv4: 384x13x13 -> 384x13x13
  net.push_back(conv_spec("conv4", 384, 13, 13, 384, 3, 1, 1));
  // conv5: 384x13x13 -> 256x13x13
  net.push_back(conv_spec("conv5", 384, 13, 13, 256, 3, 1, 1));
  net.push_back(pool_spec("pool5", 256, 13, 13, 3, 2));
  // FC stack on 256*6*6 = 9216 features.
  net.push_back(fc_spec("fc6", 9216, 4096));
  net.push_back(fc_spec("fc7", 4096, 4096));
  net.push_back(fc_spec("fc8", 4096, 1000, /*relu=*/false));
  check_chain(net);
  return net;
}

std::vector<LayerSpec> weighted_layers(const std::vector<LayerSpec>& net) {
  std::vector<LayerSpec> out;
  for (const auto& l : net)
    if (l.has_weights()) out.push_back(l);
  return out;
}

std::vector<LayerSpec> mlp_spec(const std::vector<std::size_t>& dims) {
  MBD_CHECK(dims.size() >= 2);
  std::vector<LayerSpec> net;
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    const bool last = (i + 2 == dims.size());
    net.push_back(fc_spec("fc" + std::to_string(i + 1), dims[i], dims[i + 1],
                          /*relu=*/!last));
  }
  check_chain(net);
  return net;
}

std::vector<LayerSpec> rnn_proxy_spec(std::size_t input, std::size_t hidden,
                                      std::size_t steps, std::size_t output) {
  MBD_CHECK_GT(steps, 0u);
  std::vector<LayerSpec> net;
  net.push_back(fc_spec("embed", input, hidden));
  for (std::size_t t = 0; t < steps; ++t)
    net.push_back(fc_spec("step" + std::to_string(t + 1), hidden, hidden));
  net.push_back(fc_spec("readout", hidden, output, /*relu=*/false));
  check_chain(net);
  return net;
}

std::vector<LayerSpec> small_cnn_spec(std::size_t in_c, std::size_t in_hw,
                                      std::size_t classes) {
  std::vector<LayerSpec> net;
  net.push_back(conv_spec("conv1", in_c, in_hw, in_hw, 8, 3, 1, 1));
  net.push_back(conv_spec("conv2", 8, in_hw, in_hw, 8, 3, 1, 1));
  net.push_back(pool_spec("pool1", 8, in_hw, in_hw, 2, 2));
  const std::size_t hw2 = (in_hw - 2) / 2 + 1;
  net.push_back(fc_spec("fc1", 8 * hw2 * hw2, 32));
  net.push_back(fc_spec("fc2", 32, classes, /*relu=*/false));
  check_chain(net);
  return net;
}

}  // namespace mbd::nn
