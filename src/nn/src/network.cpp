#include "mbd/nn/network.hpp"

#include <algorithm>

#include "mbd/support/check.hpp"

namespace mbd::nn {

void Network::add(std::unique_ptr<Layer> layer) {
  MBD_CHECK(layer != nullptr);
  layers_.push_back(std::move(layer));
}

tensor::Matrix Network::forward(const tensor::Matrix& x) {
  tensor::Matrix cur = x;
  for (auto& l : layers_) cur = l->forward(cur);
  return cur;
}

tensor::Matrix Network::backward(const tensor::Matrix& dy) {
  tensor::Matrix cur = dy;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    cur = (*it)->backward(cur);
  return cur;
}

void Network::sgd_step(float lr, float momentum) {
  if (momentum != 0.0f && velocity_.empty()) {
    velocity_.resize(layers_.size());
    for (std::size_t li = 0; li < layers_.size(); ++li)
      velocity_[li].assign(layers_[li]->weights().size(), 0.0f);
  }
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    auto w = layers_[li]->weights();
    auto g = layers_[li]->grads();
    MBD_CHECK_EQ(w.size(), g.size());
    if (momentum == 0.0f) {
      for (std::size_t i = 0; i < w.size(); ++i) w[i] -= lr * g[i];
    } else {
      auto& v = velocity_[li];
      for (std::size_t i = 0; i < w.size(); ++i) {
        v[i] = momentum * v[i] + g[i];
        w[i] -= lr * v[i];
      }
    }
  }
}

void Network::set_batch_context(std::uint64_t iteration,
                                std::uint64_t sample_offset) {
  for (auto& l : layers_) l->set_batch_context(iteration, sample_offset);
}

std::size_t Network::num_params() const {
  std::size_t n = 0;
  for (const auto& l : layers_)
    n += const_cast<Layer&>(*l).weights().size();
  return n;
}

std::vector<float> Network::save_params() const {
  std::vector<float> flat;
  flat.reserve(num_params());
  for (const auto& l : layers_) {
    auto w = const_cast<Layer&>(*l).weights();
    flat.insert(flat.end(), w.begin(), w.end());
  }
  return flat;
}

void Network::load_params(std::span<const float> flat) {
  std::size_t at = 0;
  for (auto& l : layers_) {
    auto w = l->weights();
    MBD_CHECK_LE(at + w.size(), flat.size());
    std::copy_n(flat.begin() + static_cast<std::ptrdiff_t>(at), w.size(),
                w.begin());
    at += w.size();
  }
  MBD_CHECK_EQ(at, flat.size());
}

std::vector<float> Network::save_state() const {
  std::vector<float> flat = save_params();
  flat.reserve(state_size());
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const std::size_t n = const_cast<Layer&>(*layers_[li]).weights().size();
    if (li < velocity_.size() && !velocity_[li].empty()) {
      MBD_CHECK_EQ(velocity_[li].size(), n);
      flat.insert(flat.end(), velocity_[li].begin(), velocity_[li].end());
    } else {
      flat.insert(flat.end(), n, 0.0f);
    }
  }
  return flat;
}

void Network::load_state(std::span<const float> flat) {
  MBD_CHECK_EQ(flat.size(), state_size());
  const std::size_t np = num_params();
  load_params(flat.first(np));
  velocity_.resize(layers_.size());
  std::size_t at = np;
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const std::size_t n = layers_[li]->weights().size();
    velocity_[li].assign(flat.begin() + static_cast<std::ptrdiff_t>(at),
                         flat.begin() + static_cast<std::ptrdiff_t>(at + n));
    at += n;
  }
  MBD_CHECK_EQ(at, flat.size());
}

Network build_network(const std::vector<LayerSpec>& specs,
                      const BuildOptions& opts) {
  check_chain(specs);
  Network net;
  Rng rng(opts.seed);
  std::size_t fc_index = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const LayerSpec& s = specs[i];
    switch (s.kind) {
      case LayerKind::Conv:
        net.add(std::make_unique<Conv2D>(s.name, s.conv, rng));
        break;
      case LayerKind::FullyConnected:
        net.add(std::make_unique<FullyConnected>(s.name, s.fc_in, s.fc_out, rng));
        ++fc_index;
        break;
      case LayerKind::Pool:
        net.add(std::make_unique<MaxPool2D>(s.name, s.conv));
        break;
    }
    if (s.relu_after)
      net.add(std::make_unique<ReLU>(s.name + "_relu"));
    // Dropout after hidden FC layers (AlexNet applies it to fc6/fc7).
    const bool hidden_fc =
        s.kind == LayerKind::FullyConnected && i + 1 < specs.size();
    if (opts.dropout_prob > 0.0 && hidden_fc) {
      net.add(std::make_unique<Dropout>(s.name + "_drop", opts.dropout_prob,
                                        opts.dropout_seed + fc_index));
    }
  }
  return net;
}

}  // namespace mbd::nn
