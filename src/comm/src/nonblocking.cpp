#include "mbd/comm/nonblocking.hpp"

#include <exception>

#include "mbd/comm/schedule_recorder.hpp"
#include "mbd/comm/validator.hpp"
#include "mbd/obs/profiler.hpp"

namespace mbd::comm {
namespace {

void record_nb_close(detail::PendingOp& op, ScheduleEventKind kind) {
  if (op.recorder == nullptr) return;
  ScheduleEvent ev;
  ev.kind = kind;
  ev.token = op.rec_token;
  op.recorder->ranks[static_cast<std::size_t>(op.rec_rank)].events.push_back(
      std::move(ev));
}

}  // namespace

CollectiveHandle::~CollectiveHandle() {
  if (op_ == nullptr || completed_) return;
  // RAII cancellation (only during unwind — a quietly dropped handle on the
  // happy path is a bug the leak report should still name).
  if (std::uncaught_exceptions() > 0) {
    if (op_->validator != nullptr) {
      op_->validator->on_nb_cancelled(op_->global_rank, op_->nb_token);
    }
    record_nb_close(*op_, ScheduleEventKind::NbCancel);
  }
}

bool CollectiveHandle::test() {
  if (done()) return true;
  bool completed;
  {
    obs::ScopedSpan span(obs::SpanKind::NbDrain, op_->obs_what);
    span.set_flow(op_->obs_flow);
    completed = op_->advance(detail::Drive::Poll);
  }
  if (!completed) return false;
  finish();
  return true;
}

void CollectiveHandle::wait() {
  if (done()) return;
  {
    obs::ScopedSpan span(obs::SpanKind::CollWait, op_->obs_what);
    span.set_flow(op_->obs_flow);
    op_->advance(detail::Drive::Block);
  }
  finish();
}

void CollectiveHandle::finish() {
  completed_ = true;
  if (op_->validator != nullptr) {
    op_->validator->on_nb_completed(op_->global_rank, op_->nb_token);
  }
  record_nb_close(*op_, ScheduleEventKind::NbDone);
}

bool progress_all(std::span<CollectiveHandle> handles) {
  bool all = true;
  for (auto& h : handles) all &= h.test();
  return all;
}

}  // namespace mbd::comm
