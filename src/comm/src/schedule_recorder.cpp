#include "mbd/comm/schedule_recorder.hpp"

#include <sstream>

namespace mbd::comm {

std::string_view schedule_event_kind_name(ScheduleEventKind k) {
  switch (k) {
    case ScheduleEventKind::Send: return "send";
    case ScheduleEventKind::Recv: return "recv";
    case ScheduleEventKind::CollEnter: return "coll_enter";
    case ScheduleEventKind::NbPost: return "nb_post";
    case ScheduleEventKind::NbDone: return "nb_done";
    case ScheduleEventKind::NbCancel: return "nb_cancel";
    case ScheduleEventKind::StepEnd: return "step_end";
  }
  return "?";
}

std::string ScheduleEvent::describe() const {
  std::ostringstream os;
  switch (kind) {
    case ScheduleEventKind::Send:
      os << "send(to=" << peer << ", tag=" << tag << ", bytes=" << bytes
         << ", class=" << coll_name(coll) << ')';
      break;
    case ScheduleEventKind::Recv:
      os << "recv(from=" << peer << ", tag=" << tag << ", bytes=" << bytes
         << ')';
      break;
    case ScheduleEventKind::CollEnter:
      os << "enter " << desc.describe() << " [comm_rank=" << comm_rank << '/'
         << comm_size << ", context=" << context << ']';
      break;
    case ScheduleEventKind::NbPost:
      os << "nb_post(token=" << token << ", " << what << ')';
      break;
    case ScheduleEventKind::NbDone:
      os << "nb_done(token=" << token << ')';
      break;
    case ScheduleEventKind::NbCancel:
      os << "nb_cancel(token=" << token << ')';
      break;
    case ScheduleEventKind::StepEnd:
      os << "step_end(iteration=" << token << ')';
      break;
  }
  return os.str();
}

}  // namespace mbd::comm
