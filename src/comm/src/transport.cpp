#include "mbd/comm/transport.hpp"

#include "mbd/comm/fabric.hpp"

namespace mbd::comm {

int watchdog_scale(TransportLatency latency) {
  switch (latency) {
    case TransportLatency::InProcess: return 1;
    case TransportLatency::LoopbackSocket: return 5;
    case TransportLatency::Network: return 15;
  }
  return 1;
}

std::string_view transport_latency_name(TransportLatency latency) {
  switch (latency) {
    case TransportLatency::InProcess: return "in-process";
    case TransportLatency::LoopbackSocket: return "loopback-socket";
    case TransportLatency::Network: return "network";
  }
  return "unknown";
}

void InProcessTransport::deposit(int dst, Message msg) {
  fabric_->mailboxes[static_cast<std::size_t>(dst)].push(std::move(msg));
}

}  // namespace mbd::comm
