#include "mbd/comm/validator.hpp"

#include <cxxabi.h>

#include <cstdlib>
#include <memory>
#include <sstream>

namespace mbd::comm {
namespace {

// Demangle a typeid name for diagnostics; falls back to the mangled form.
std::string demangle(std::string_view mangled) {
  if (mangled.empty()) return {};
  const std::string name(mangled);
  int status = 0;
  const std::unique_ptr<char, void (*)(void*)> out(
      abi::__cxa_demangle(name.c_str(), nullptr, nullptr, &status),
      std::free);
  return status == 0 && out ? std::string(out.get()) : name;
}

}  // namespace

std::string_view op_kind_name(OpKind k) {
  switch (k) {
    case OpKind::Barrier: return "barrier";
    case OpKind::Broadcast: return "broadcast";
    case OpKind::Reduce: return "reduce";
    case OpKind::AllGather: return "allgather";
    case OpKind::AllGatherV: return "allgatherv";
    case OpKind::AllReduce: return "allreduce";
    case OpKind::ReduceScatter: return "reduce_scatter";
    case OpKind::Gather: return "gather";
    case OpKind::Scatter: return "scatter";
    case OpKind::AllToAll: return "alltoall";
    case OpKind::Split: return "split";
    case OpKind::kCount: break;
  }
  return "unknown";
}

std::string CollectiveDesc::describe() const {
  std::ostringstream os;
  os << op_kind_name(kind) << '(';
  const char* sep = "";
  if (kind != OpKind::Barrier && kind != OpKind::Split) {
    if (count == kAnyCount) {
      os << "count=<per-rank>";
    } else {
      os << "count=" << count;
    }
    sep = ", ";
  }
  if (!elem_type.empty()) {
    os << sep << "elem=" << demangle(elem_type);
    sep = ", ";
  }
  if (!reduce_op.empty()) {
    os << sep << "op=" << demangle(reduce_op);
    sep = ", ";
  }
  if (algo >= 0) {
    os << sep << "algo=" << algo;
    sep = ", ";
  }
  if (root >= 0) {
    os << sep << "root=" << root;
    sep = ", ";
  }
  if (nonblocking) os << sep << "nonblocking";
  os << ')';
  return os.str();
}

Validator::Validator(int world_size)
    : last_collective_(static_cast<std::size_t>(world_size)),
      last_p2p_(static_cast<std::size_t>(world_size)),
      nb_inflight_(static_cast<std::size_t>(world_size)),
      timeout_ms_(kDefaultTimeout.count()) {
  // Environment override: sanitizer CI jobs lengthen the watchdog without
  // code edits. Invalid or non-positive values are ignored; an explicit
  // set_timeout() call still wins (it runs after construction).
  if (const char* env = std::getenv("MBD_WATCHDOG_MS")) {  // NOLINT(concurrency-mt-unsafe)
    char* end = nullptr;
    const long long ms = std::strtoll(env, &end, 10);
    if (end != env && *end == '\0' && ms > 0) {
      timeout_ms_.store(ms, std::memory_order_relaxed);
    }
  }
}

void Validator::set_timeout(std::chrono::milliseconds t) {
  MBD_CHECK_GT(t.count(), 0);
  timeout_ms_.store(t.count(), std::memory_order_relaxed);
  explicit_timeout_.store(true, std::memory_order_relaxed);
}

std::chrono::milliseconds Validator::timeout() const {
  const std::chrono::milliseconds base(
      timeout_ms_.load(std::memory_order_relaxed));
  if (explicit_timeout_.load(std::memory_order_relaxed)) return base;
  return base * timeout_scale_.load(std::memory_order_relaxed);
}

void Validator::set_timeout_scale(int scale) {
  MBD_CHECK_GT(scale, 0);
  timeout_scale_.store(scale, std::memory_order_relaxed);
}

void Validator::set_local_only(bool local_only) {
  local_only_.store(local_only, std::memory_order_relaxed);
}

bool Validator::local_only() const {
  return local_only_.load(std::memory_order_relaxed);
}

void Validator::adopt_settings(const Validator& other) {
  timeout_ms_.store(other.timeout_ms_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  timeout_scale_.store(other.timeout_scale_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  explicit_timeout_.store(
      other.explicit_timeout_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  local_only_.store(other.local_only_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
}

void Validator::reset_transient() {
  std::lock_guard lock(mu_);
  contexts_.clear();
  for (auto& s : last_collective_) s.clear();
  for (auto& s : last_p2p_) s.clear();
  for (auto& per_rank : nb_inflight_) per_rank.clear();
  cancelled_ = 0;
}

void Validator::on_enter(std::uint64_t context, int comm_rank, int global_rank,
                         int comm_size, const CollectiveDesc& desc) {
  if (local_only_.load(std::memory_order_relaxed)) {
    // Single observable rank: there is no cross-rank rendezvous to match
    // (slots could never retire), but the last-activity line still feeds the
    // deadlock report.
    std::ostringstream act;
    act << desc.describe() << " [on context 0x" << std::hex << context
        << std::dec << ']';
    std::lock_guard lock(mu_);
    last_collective_[static_cast<std::size_t>(global_rank)] = act.str();
    return;
  }
  std::lock_guard lock(mu_);
  auto& st = contexts_[context];
  if (st.next_seq.empty())
    st.next_seq.resize(static_cast<std::size_t>(comm_size), 0);
  MBD_CHECK_EQ(st.next_seq.size(), static_cast<std::size_t>(comm_size));

  const std::uint64_t seq = st.next_seq[static_cast<std::size_t>(comm_rank)]++;
  const std::size_t idx = static_cast<std::size_t>(seq - st.retired);
  // A rank enters collectives on a context strictly in order, so its slot is
  // either an existing in-flight op or the next fresh one — never beyond.
  MBD_CHECK_LE(idx, st.inflight.size());

  if (idx == st.inflight.size()) {
    st.inflight.push_back(InflightOp{desc, comm_rank, 1});
  } else {
    InflightOp& op = st.inflight[idx];
    if (!desc.matches(op.desc)) {
      std::ostringstream os;
      os << "collective mismatch on communicator context 0x" << std::hex
         << context << std::dec << " (size " << comm_size << "), operation #"
         << seq << ": rank " << comm_rank << " called " << desc.describe()
         << " but rank " << op.first_comm_rank << " called "
         << op.desc.describe();
      throw ValidationError(os.str());
    }
    ++op.arrived;
  }
  // Retire fully-matched ops from the front so the deque stays small.
  while (!st.inflight.empty() && st.inflight.front().arrived == comm_size) {
    st.inflight.pop_front();
    ++st.retired;
  }

  std::ostringstream act;
  act << desc.describe() << " [op #" << seq << " on context 0x" << std::hex
      << context << std::dec << ']';
  last_collective_[static_cast<std::size_t>(global_rank)] = act.str();
}

void Validator::on_p2p(int global_rank, std::string activity) {
  std::lock_guard lock(mu_);
  last_p2p_[static_cast<std::size_t>(global_rank)] = std::move(activity);
}

std::uint64_t Validator::on_nb_initiated(int global_rank, std::string what) {
  std::lock_guard lock(mu_);
  const std::uint64_t token = next_nb_token_++;
  nb_inflight_[static_cast<std::size_t>(global_rank)].emplace(token,
                                                             std::move(what));
  return token;
}

void Validator::on_nb_completed(int global_rank, std::uint64_t token) {
  std::lock_guard lock(mu_);
  auto& inflight = nb_inflight_[static_cast<std::size_t>(global_rank)];
  const auto it = inflight.find(token);
  MBD_CHECK_MSG(it != inflight.end(),
                "nonblocking completion token " << token
                                                << " unknown on rank "
                                                << global_rank);
  inflight.erase(it);
}

void Validator::on_nb_cancelled(int global_rank, std::uint64_t token) {
  std::lock_guard lock(mu_);
  auto& inflight = nb_inflight_[static_cast<std::size_t>(global_rank)];
  const auto it = inflight.find(token);
  if (it == inflight.end()) return;  // already completed before the unwind
  inflight.erase(it);
  ++cancelled_;
}

std::uint64_t Validator::take_cancelled() {
  std::lock_guard lock(mu_);
  const std::uint64_t n = cancelled_;
  cancelled_ = 0;
  return n;
}

std::vector<std::string> Validator::outstanding_nonblocking() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> out;
  for (std::size_t r = 0; r < nb_inflight_.size(); ++r) {
    for (const auto& [token, what] : nb_inflight_[r]) {
      out.push_back("rank " + std::to_string(r) + ": " + what);
    }
  }
  return out;
}

std::string Validator::deadlock_report(int global_rank, std::uint64_t context,
                                       int src, int tag) const {
  std::lock_guard lock(mu_);
  std::ostringstream os;
  os << "probable deadlock: rank " << global_rank << " blocked longer than "
     << timeout().count() << " ms in recv(context=0x" << std::hex << context
     << std::dec << ", src=" << src << ", tag=" << tag
     << "); last known activity per rank:";
  for (std::size_t r = 0; r < last_collective_.size(); ++r) {
    os << "\n  rank " << r << ": collective "
       << (last_collective_[r].empty() ? "<none yet>" : last_collective_[r]);
    if (!last_p2p_[r].empty()) os << ", p2p " << last_p2p_[r];
  }
  // A stuck recv while nonblocking operations are pending usually means a
  // CollectiveHandle was never waited (its peers' schedule messages are
  // parked in the mailboxes) — name those ops distinctly from a plain stall.
  bool any_nb = false;
  for (const auto& per_rank : nb_inflight_) any_nb |= !per_rank.empty();
  if (any_nb) {
    os << "\nnonblocking operations initiated but not completed (un-waited or "
          "leaked CollectiveHandle?):";
    for (std::size_t r = 0; r < nb_inflight_.size(); ++r) {
      for (const auto& [token, what] : nb_inflight_[r]) {
        os << "\n  rank " << r << ": " << what;
      }
    }
  }
  return os.str();
}

}  // namespace mbd::comm
