#include "mbd/comm/stats.hpp"

namespace mbd::comm {

std::string_view coll_name(Coll c) {
  switch (c) {
    case Coll::PointToPoint: return "p2p";
    case Coll::Barrier: return "barrier";
    case Coll::Broadcast: return "broadcast";
    case Coll::Reduce: return "reduce";
    case Coll::AllReduce: return "allreduce";
    case Coll::ReduceScatter: return "reduce_scatter";
    case Coll::AllGather: return "allgather";
    case Coll::Gather: return "gather";
    case Coll::Scatter: return "scatter";
    case Coll::kCount: break;
  }
  return "unknown";
}

std::uint64_t StatsSnapshot::total_bytes() const {
  std::uint64_t t = 0;
  for (const auto& e : by_coll) t += e.bytes;
  return t;
}

std::uint64_t StatsSnapshot::total_messages() const {
  std::uint64_t t = 0;
  for (const auto& e : by_coll) t += e.messages;
  return t;
}

StatsSnapshot StatsSnapshot::since(const StatsSnapshot& earlier) const {
  StatsSnapshot d;
  for (std::size_t i = 0; i < by_coll.size(); ++i) {
    d.by_coll[i].bytes = by_coll[i].bytes - earlier.by_coll[i].bytes;
    d.by_coll[i].messages = by_coll[i].messages - earlier.by_coll[i].messages;
  }
  return d;
}

StatsSnapshot StatsCounters::snapshot() const {
  StatsSnapshot s;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    s.by_coll[i].bytes = entries_[i].bytes.load(std::memory_order_relaxed);
    s.by_coll[i].messages =
        entries_[i].messages.load(std::memory_order_relaxed);
  }
  return s;
}

void StatsCounters::reset() {
  for (auto& e : entries_) {
    e.bytes.store(0, std::memory_order_relaxed);
    e.messages.store(0, std::memory_order_relaxed);
  }
}

}  // namespace mbd::comm
