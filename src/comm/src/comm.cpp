#include "mbd/comm/comm.hpp"

#include <algorithm>
#include <sstream>
#include <tuple>

namespace mbd::comm {
namespace {

// SplitMix64-style mix used to derive child communicator contexts. Contexts
// only need to be distinct with overwhelming probability; they are never
// inverted.
std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t x = a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2));
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

Comm::Comm(std::shared_ptr<detail::Fabric> fabric, std::uint64_t context,
           std::shared_ptr<const std::vector<int>> members, int rank)
    : fabric_(std::move(fabric)),
      context_(context),
      members_(std::move(members)),
      rank_(rank) {
  MBD_CHECK(fabric_ != nullptr);
  MBD_CHECK(members_ != nullptr && !members_->empty());
  MBD_CHECK(rank_ >= 0 && rank_ < static_cast<int>(members_->size()));
}

int Comm::global_rank(int comm_rank) const {
  MBD_CHECK_MSG(comm_rank >= 0 && comm_rank < size(),
                "rank " << comm_rank << " out of range for communicator of size "
                        << size());
  return (*members_)[static_cast<std::size_t>(comm_rank)];
}

void Comm::validate_entry(const CollectiveDesc& desc) {
  if (Validator* v = fabric_->validator.get()) {
    v->on_enter(context_, rank_, global_rank(rank_), size(), desc);
  }
  if (ScheduleRecording* rec = fabric_->recorder.get()) {
    ScheduleEvent ev;
    ev.kind = ScheduleEventKind::CollEnter;
    ev.context = context_;
    ev.comm_rank = rank_;
    ev.comm_size = size();
    ev.desc = desc;
    rec->ranks[static_cast<std::size_t>(global_rank(rank_))].events.push_back(
        std::move(ev));
  }
}

void Comm::send_bytes(int dst, std::span<const std::byte> data, int tag,
                      Coll c, std::uint64_t reserved_op) {
  MBD_CHECK_MSG(dst != rank_, "self-send is not supported");
  if (fabric_->poisoned.load(std::memory_order_acquire)) {
    throw PoisonedError("mbd::comm fabric poisoned: another rank threw");
  }
  const int gme = global_rank(rank_);
  const int gdst = global_rank(dst);
  FaultInjector* fi = fabric_->injector.get();
  // One transport op per send: the injector counts it, fires crash/slow
  // actions pinned to this op index, and releases due deferred deliveries.
  // A nonblocking ring-round send instead carries the op identity reserved
  // at initiation: the counter already advanced then, and faults match the
  // reserved identity exactly.
  if (fi != nullptr) {
    if (reserved_op != 0) {
      fi->on_reserved_op(gme, reserved_op, *fabric_->transport);
    } else {
      fi->on_op(gme, *fabric_->transport);
    }
  }
  if (Validator* v = fabric_->validator.get(); v != nullptr && c == Coll::PointToPoint) {
    std::ostringstream os;
    os << "send(to=" << gdst << ", tag=" << tag
       << ", bytes=" << data.size() << ')';
    v->on_p2p(gme, os.str());
  }
  fabric_->counters.record(c, data.size());
  if (ScheduleRecording* rec = fabric_->recorder.get()) {
    ScheduleEvent ev;
    ev.kind = ScheduleEventKind::Send;
    ev.context = context_;
    ev.peer = gdst;
    ev.tag = tag;
    ev.bytes = data.size();
    ev.coll = c;
    rec->ranks[static_cast<std::size_t>(gme)].events.push_back(std::move(ev));
  }
  Message msg;
  msg.context = context_;
  msg.source = gme;
  msg.tag = tag;
  msg.payload.assign(data.begin(), data.end());
  if (fabric_->tracing()) {
    msg.trace_id =
        fabric_->next_msg_id.fetch_add(1, std::memory_order_relaxed);
    fabric_->trace->ranks[static_cast<std::size_t>(msg.source)].push_back(
        {TraceEvent::Kind::Send, gdst, data.size(), msg.trace_id, 0.0});
  }
  if (fi != nullptr) {
    msg.seq = fi->assign_seq(context_, gme, gdst, tag);
    if (reserved_op != 0) {
      fi->deliver(*fabric_->transport, gme, gdst, std::move(msg), reserved_op);
    } else {
      fi->deliver(*fabric_->transport, gme, gdst, std::move(msg));
    }
  } else {
    fabric_->transport->deposit(gdst, std::move(msg));
  }
}

std::uint64_t Comm::reserve_nb_ops(std::uint64_t rounds) {
  FaultInjector* fi = fabric_->injector.get();
  if (fi == nullptr || rounds == 0) return 0;
  return fi->reserve_ops(global_rank(rank_), rounds);
}

std::vector<std::byte> Comm::recv_bytes(int src, int tag, bool counted) {
  const int gsrc = global_rank(src);
  const int gme = global_rank(rank_);
  Validator* v = fabric_->validator.get();
  FaultInjector* fi = fabric_->injector.get();
  // A blocking recv is a transport op like a send (crash points land on
  // receives too). Nonblocking test() polls and nonblocking Block receives
  // are deliberately not counted: their occurrence is timing-dependent
  // (a round may complete via either path), which would break op-sequence
  // determinism.
  if (fi != nullptr && counted) fi->on_op(gme, *fabric_->transport);
  Message msg;
  if (v != nullptr || fi != nullptr) {
    if (v != nullptr && tag < kInternalTagBase) {
      std::ostringstream os;
      os << "recv(from=" << gsrc << ", tag=" << tag << ')';
      v->on_p2p(gme, os.str());
    }
    // Watchdog: a receive blocked past the validator timeout throws a
    // probable-deadlock report instead of hanging the test run — naming the
    // injected fault when one is responsible. The retry hook is the ack/
    // retransmission path for injected drops: every retry_interval the
    // injector re-deposits anything swallowed or deferred for this rank.
    PopWatch watch;
    if (v != nullptr) {
      watch.timeout = v->timeout();
      watch.report = [v, fi, gme, this, gsrc, tag] {
        std::string r = v->deadlock_report(gme, context_, gsrc, tag);
        if (fi != nullptr) r += fi->attribution_note();
        return r;
      };
    }
    if (fi != nullptr) {
      watch.retry_interval = fi->retry_interval();
      // Two recovery paths per retry tick: the local injector flushes what
      // *this* process swallowed/deferred for us, and the transport asks the
      // remote peers (a wire RetryRequest; no-op in-process) to do the same.
      watch.on_retry = [this, fi, gme] {
        fi->retry_deliver(*fabric_->transport, gme);
        fabric_->transport->request_retransmit(gme);
      };
    }
    msg = fabric_->mailboxes[static_cast<std::size_t>(gme)].pop(context_, gsrc,
                                                                tag, &watch);
  } else {
    msg = fabric_->mailboxes[static_cast<std::size_t>(gme)].pop(context_, gsrc,
                                                                tag);
  }
  if (fabric_->tracing() && msg.trace_id != 0) {
    fabric_->trace->ranks[static_cast<std::size_t>(gme)].push_back(
        {TraceEvent::Kind::Recv, gsrc, msg.payload.size(), msg.trace_id, 0.0});
  }
  record_recv(gme, gsrc, tag, msg.payload.size());
  return std::move(msg.payload);
}

void Comm::record_recv(int gme, int gsrc, int tag, std::size_t bytes) {
  if (ScheduleRecording* rec = fabric_->recorder.get()) {
    ScheduleEvent ev;
    ev.kind = ScheduleEventKind::Recv;
    ev.context = context_;
    ev.peer = gsrc;
    ev.tag = tag;
    ev.bytes = bytes;
    rec->ranks[static_cast<std::size_t>(gme)].events.push_back(std::move(ev));
  }
}

void Comm::mark_engine_step(std::size_t iteration) {
  if (ScheduleRecording* rec = fabric_->recorder.get()) {
    ScheduleEvent ev;
    ev.kind = ScheduleEventKind::StepEnd;
    ev.token = iteration;
    rec->ranks[static_cast<std::size_t>(global_rank(rank_))]
        .events.push_back(std::move(ev));
  }
}

bool Comm::try_recv_bytes(int src, int tag, std::vector<std::byte>& out) {
  const int gsrc = global_rank(src);
  const int gme = global_rank(rank_);
  Message msg;
  if (!fabric_->mailboxes[static_cast<std::size_t>(gme)].try_pop(context_,
                                                                 gsrc, tag,
                                                                 msg)) {
    return false;
  }
  if (fabric_->tracing() && msg.trace_id != 0) {
    fabric_->trace->ranks[static_cast<std::size_t>(gme)].push_back(
        {TraceEvent::Kind::Recv, gsrc, msg.payload.size(), msg.trace_id, 0.0});
  }
  record_recv(gme, gsrc, tag, msg.payload.size());
  out = std::move(msg.payload);
  return true;
}

CollectiveHandle Comm::make_handle(std::unique_ptr<detail::PendingOp> op,
                                   const char* op_name, std::string what) {
  if (ScheduleRecording* rec = fabric_->recorder.get()) {
    const int gme = global_rank(rank_);
    auto& log = rec->ranks[static_cast<std::size_t>(gme)];
    op->recorder = rec;
    op->rec_rank = gme;
    op->rec_token = log.next_nb_token++;
    ScheduleEvent ev;
    ev.kind = ScheduleEventKind::NbPost;
    ev.context = context_;
    ev.token = op->rec_token;
    ev.what = what;  // copy: the validator takes ownership below
    log.events.push_back(std::move(ev));
  }
  if (Validator* v = fabric_->validator.get()) {
    op->validator = v;
    op->global_rank = global_rank(rank_);
    op->nb_token = v->on_nb_initiated(op->global_rank, std::move(what));
  }
  // The CollPost span covers initiation (round-0 sends); its flow id is
  // echoed by the CollWait/NbDrain span that later completes the op, which
  // the Chrome-trace exporter turns into an arrow across the timeline.
  obs::ScopedSpan obs_span(obs::SpanKind::CollPost, op_name);
  op->obs_what = op_name;
  if (obs_span.active()) {
    op->obs_flow = obs::next_flow_id();
    obs_span.set_flow(op->obs_flow);
  }
  CollectiveHandle h(std::move(op));
  // Post round 0 only — never consume here. Buffered sends keep peers from
  // stalling while this rank computes, and deferring every receive to
  // test()/wait() keeps the Recv positions in a recorded trace at
  // deterministic program points (replay_trace depends on that order).
  // Single-rank schedules have no rounds and complete at initiation.
  if (h.op_->advance(detail::Drive::Post)) h.finish();
  return h;
}

void Comm::annotate_compute(double seconds) {
  MBD_CHECK(seconds >= 0.0);
  if (!fabric_->tracing()) return;
  fabric_->trace->ranks[static_cast<std::size_t>(global_rank(rank_))]
      .push_back({TraceEvent::Kind::Compute, -1, 0, 0, seconds});
}

void Comm::barrier() {
  const obs::ScopedSpan obs_span(obs::SpanKind::CollWait, "barrier");
  validate_entry({.kind = OpKind::Barrier});
  const int p = size();
  const std::byte token{0};
  for (int k = 1, step = 0; k < p; k <<= 1, ++step) {
    const int dst = (rank_ + k) % p;
    const int src = (rank_ - k + p) % p;
    send_bytes(dst, std::span<const std::byte>(&token, 1),
               internal_tag(Coll::Barrier, step), Coll::Barrier);
    (void)recv_bytes(src, internal_tag(Coll::Barrier, step));
  }
}

Comm Comm::split(int color, int key) {
  // Color and key legitimately differ across ranks; only the fact that every
  // rank entered split() is validated (the inner allgather re-validates).
  validate_entry({.kind = OpKind::Split});
  // Gather (color, key, parent_rank) from everyone, then carve out the group.
  struct Entry {
    int color, key, parent_rank;
  };
  const Entry mine{color, key, rank_};
  const auto all = allgather(std::span<const Entry>(&mine, 1));
  std::vector<Entry> group;
  group.reserve(all.size());
  for (const auto& e : all)
    if (e.color == color) group.push_back(e);
  std::sort(group.begin(), group.end(), [](const Entry& a, const Entry& b) {
    return std::tie(a.key, a.parent_rank) < std::tie(b.key, b.parent_rank);
  });
  auto members = std::make_shared<std::vector<int>>();
  members->reserve(group.size());
  int my_new_rank = -1;
  for (std::size_t i = 0; i < group.size(); ++i) {
    members->push_back(global_rank(group[i].parent_rank));
    if (group[i].parent_rank == rank_) my_new_rank = static_cast<int>(i);
  }
  MBD_CHECK(my_new_rank >= 0);
  const std::uint64_t child_context =
      mix(mix(context_, static_cast<std::uint64_t>(split_seq_)),
          static_cast<std::uint64_t>(static_cast<std::uint32_t>(color)) + 1);
  ++split_seq_;
  return Comm(fabric_, child_context, std::move(members), my_new_rank);
}

}  // namespace mbd::comm
