#include "mbd/comm/fault.hpp"

#include <algorithm>
#include <sstream>
#include <thread>

#include "mbd/comm/transport.hpp"
#include "mbd/obs/profiler.hpp"
#include "mbd/support/rng.hpp"

namespace mbd::comm {

std::string_view fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::DelayDelivery: return "delay";
    case FaultKind::DropMessage: return "drop";
    case FaultKind::DuplicateDelivery: return "duplicate";
    case FaultKind::CrashRank: return "crash";
    case FaultKind::SlowRank: return "slow";
  }
  return "unknown";
}

std::string FaultAction::describe() const {
  std::ostringstream os;
  os << fault_kind_name(kind) << "(rank=" << rank << ", op=" << op_index
     << ", epoch=" << epoch;
  if (kind == FaultKind::DelayDelivery) os << ", defer_ops=" << defer_ops;
  if (kind == FaultKind::SlowRank)
    os << ", slow_ops=" << slow_ops << ", delay=" << delay.count() << "ms";
  os << ')';
  return os.str();
}

FaultPlan FaultPlan::random(std::uint64_t seed, int world_size,
                            const FaultPlanOptions& opts) {
  MBD_CHECK_GT(world_size, 0);
  MBD_CHECK_LE(opts.min_op, opts.max_op);
  Rng rng(seed);
  FaultPlan plan;
  plan.seed = seed;

  const auto pick_op = [&] {
    return opts.min_op +
           rng.uniform_index(opts.max_op - opts.min_op + 1);
  };

  // One crash per epoch. The epoch-0 crash anchors the send-faults: they go
  // on the same rank at strictly earlier op indices so they are guaranteed
  // to fire before the fabric is torn down.
  std::vector<FaultAction> crashes;
  for (int e = 0; e < opts.crashes; ++e) {
    FaultAction a;
    a.kind = FaultKind::CrashRank;
    a.rank = static_cast<int>(rng.uniform_index(
        static_cast<std::uint64_t>(world_size)));
    a.op_index = pick_op();
    a.epoch = e;
    crashes.push_back(a);
  }

  const int send_rank = crashes.empty() ? 0 : crashes.front().rank;
  const std::uint64_t ceiling =
      crashes.empty() ? opts.max_op : crashes.front().op_index;
  const auto pick_early_op = [&] {
    // In [1, ceiling - 1]; every send-fault op precedes the crash op.
    return 1 + rng.uniform_index(std::max<std::uint64_t>(ceiling, 2) - 1);
  };
  const auto add_send_faults = [&](FaultKind kind, int n) {
    for (int i = 0; i < n; ++i) {
      FaultAction a;
      a.kind = kind;
      a.rank = send_rank;
      a.op_index = pick_early_op();
      a.epoch = 0;
      if (kind == FaultKind::DelayDelivery)
        a.defer_ops = 1 + rng.uniform_index(4);
      plan.actions.push_back(a);
    }
  };
  add_send_faults(FaultKind::DropMessage, opts.drops);
  add_send_faults(FaultKind::DuplicateDelivery, opts.duplicates);
  add_send_faults(FaultKind::DelayDelivery, opts.delays);
  plan.actions.insert(plan.actions.end(), crashes.begin(), crashes.end());
  return plan;
}

std::string FaultPlan::describe() const {
  std::ostringstream os;
  os << "FaultPlan(seed=" << seed << ", " << actions.size() << " action(s)";
  for (const auto& a : actions) os << "\n  " << a.describe();
  os << ')';
  return os.str();
}

std::string FaultEvent::describe() const {
  std::ostringstream os;
  os << "[epoch " << epoch << "] rank " << rank << " @op " << op_index << ": "
     << kind << " — " << detail;
  return os.str();
}

// ---------------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------------

FaultInjector::FaultInjector(FaultPlan plan, FaultConfig cfg, int world_size)
    : plan_(std::move(plan)), cfg_(cfg), world_size_(world_size) {
  MBD_CHECK_GT(world_size_, 0);
  MBD_CHECK_GT(cfg_.retry_interval.count(), 0);
  for (const auto& a : plan_.actions) {
    MBD_CHECK_MSG(a.rank >= 0 && a.rank < world_size_,
                  "fault action rank " << a.rank << " out of range");
    MBD_CHECK_GT(a.op_index, 0U);
  }
  ranks_.reserve(static_cast<std::size_t>(world_size_));
  for (int r = 0; r < world_size_; ++r)
    ranks_.push_back(std::make_unique<PerRank>());
  swallowed_.resize(static_cast<std::size_t>(world_size_));
  begin_epoch(0);
}

void FaultInjector::begin_epoch(int epoch) {
  epoch_.store(epoch, std::memory_order_relaxed);
  disarmed_.store(false, std::memory_order_relaxed);
  for (int r = 0; r < world_size_; ++r) {
    auto& rs = *ranks_[static_cast<std::size_t>(r)];
    rs.ops.store(0, std::memory_order_relaxed);
    rs.point_actions.clear();
    rs.send_actions.clear();
    for (const auto& a : plan_.actions) {
      if (a.rank != r || a.epoch != epoch) continue;
      if (a.kind == FaultKind::CrashRank || a.kind == FaultKind::SlowRank)
        rs.point_actions.push_back({a, false});
      else
        rs.send_actions.push_back(a);
    }
    const auto by_op = [](const auto& x, const auto& y) {
      return x.op_index < y.op_index;
    };
    std::stable_sort(rs.point_actions.begin(), rs.point_actions.end(),
                     [&](const Armed& x, const Armed& y) {
                       return by_op(x.action, y.action);
                     });
    std::stable_sort(rs.send_actions.begin(), rs.send_actions.end(), by_op);
  }
  drop_pending();
  {
    std::lock_guard lock(seq_mu_);
    seq_.clear();
  }
}

void FaultInjector::drop_pending() {
  std::lock_guard lock(buf_mu_);
  for (auto& s : swallowed_) s.clear();
  deferred_.clear();
}

void FaultInjector::record(FaultEvent ev) {
  std::lock_guard lock(ev_mu_);
  events_.push_back(std::move(ev));
}

void FaultInjector::release_due(int rank, std::uint64_t op,
                                Transport& transport) {
  std::lock_guard lock(buf_mu_);
  for (auto it = deferred_.begin(); it != deferred_.end();) {
    if (it->msg.source == rank && it->release_at <= op) {
      transport.deposit(it->dst, std::move(it->msg));
      it = deferred_.erase(it);
    } else {
      ++it;
    }
  }
}

void FaultInjector::on_op(int rank, Transport& transport) {
  auto& rs = *ranks_[static_cast<std::size_t>(rank)];
  const std::uint64_t op =
      rs.ops.fetch_add(1, std::memory_order_relaxed) + 1;
  if (disarmed_.load(std::memory_order_relaxed)) return;
  release_due(rank, op, transport);
  for (auto& armed : rs.point_actions) {
    const FaultAction& a = armed.action;
    if (a.kind == FaultKind::CrashRank) {
      if (!armed.fired && op >= a.op_index) {
        armed.fired = true;
        disarmed_.store(true, std::memory_order_relaxed);
        record({epoch(), rank, op, "crash", "rank crashed (injected)"});
        std::ostringstream os;
        os << "injected RankFailure: rank " << rank << " crashed at op " << op
           << " (epoch " << epoch() << ')';
        throw RankFailure(os.str(), rank);
      }
    } else {  // SlowRank
      if (op >= a.op_index && op < a.op_index + a.slow_ops) {
        if (op == a.op_index) {
          std::ostringstream os;
          os << "slowing " << a.slow_ops << " op(s) by " << a.delay.count()
             << "ms each";
          record({epoch(), rank, op, "slow", os.str()});
        }
        std::this_thread::sleep_for(a.delay);
      }
    }
  }
}

std::uint64_t FaultInjector::reserve_ops(int rank, std::uint64_t n) {
  auto& rs = *ranks_[static_cast<std::size_t>(rank)];
  return rs.ops.fetch_add(n, std::memory_order_relaxed) + 1;
}

void FaultInjector::on_reserved_op(int rank, std::uint64_t op_id,
                                   Transport& transport) {
  auto& rs = *ranks_[static_cast<std::size_t>(rank)];
  if (disarmed_.load(std::memory_order_relaxed)) return;
  release_due(rank, rs.ops.load(std::memory_order_relaxed), transport);
  for (auto& armed : rs.point_actions) {
    const FaultAction& a = armed.action;
    if (a.kind == FaultKind::CrashRank) {
      if (!armed.fired && op_id == a.op_index) {
        armed.fired = true;
        disarmed_.store(true, std::memory_order_relaxed);
        record({epoch(), rank, op_id, "crash",
                "rank crashed (injected, nb round)"});
        std::ostringstream os;
        os << "injected RankFailure: rank " << rank << " crashed at op "
           << op_id << " (epoch " << epoch() << ", nb round)";
        throw RankFailure(os.str(), rank);
      }
    } else {  // SlowRank
      if (op_id >= a.op_index && op_id < a.op_index + a.slow_ops) {
        if (op_id == a.op_index) {
          std::ostringstream os;
          os << "slowing " << a.slow_ops << " op(s) by " << a.delay.count()
             << "ms each (nb round)";
          record({epoch(), rank, op_id, "slow", os.str()});
        }
        std::this_thread::sleep_for(a.delay);
      }
    }
  }
}

std::uint64_t FaultInjector::assign_seq(std::uint64_t context, int src,
                                        int dst, int tag) {
  std::lock_guard lock(seq_mu_);
  return ++seq_[{context, src, dst, tag}];
}

void FaultInjector::apply_send_fault(const FaultAction& a,
                                     Transport& transport, int src, int dst,
                                     Message msg, std::uint64_t op,
                                     bool nb_round) {
  std::ostringstream os;
  os << "message to rank " << dst << " (tag=" << msg.tag
     << ", bytes=" << msg.payload.size() << ", seq=" << msg.seq << ')';
  if (nb_round) os << " (nb round)";
  switch (a.kind) {
    case FaultKind::DropMessage: {
      record({epoch(), src, op, "drop", "dropped " + os.str()});
      std::lock_guard lock(buf_mu_);
      swallowed_[static_cast<std::size_t>(dst)].push_back(std::move(msg));
      return;
    }
    case FaultKind::DuplicateDelivery: {
      record({epoch(), src, op, "duplicate", "duplicated " + os.str()});
      Message copy = msg;
      transport.deposit(dst, std::move(copy));
      transport.deposit(dst, std::move(msg));
      return;
    }
    case FaultKind::DelayDelivery: {
      std::ostringstream ds;
      ds << "deferred " << os.str() << " by " << a.defer_ops << " op(s)";
      record({epoch(), src, op, "delay", ds.str()});
      std::lock_guard lock(buf_mu_);
      deferred_.push_back({op + a.defer_ops, dst, std::move(msg)});
      return;
    }
    case FaultKind::CrashRank:
    case FaultKind::SlowRank:
      break;  // never queued as send actions
  }
  transport.deposit(dst, std::move(msg));
}

void FaultInjector::deliver(Transport& transport, int src, int dst,
                            Message msg) {
  auto& rs = *ranks_[static_cast<std::size_t>(src)];
  const std::uint64_t op = rs.ops.load(std::memory_order_relaxed);
  if (!disarmed_.load(std::memory_order_relaxed) &&
      !rs.send_actions.empty() && op >= rs.send_actions.front().op_index) {
    const FaultAction a = rs.send_actions.front();
    rs.send_actions.pop_front();
    apply_send_fault(a, transport, src, dst, std::move(msg), op,
                     /*nb_round=*/false);
    return;
  }
  transport.deposit(dst, std::move(msg));
}

void FaultInjector::deliver(Transport& transport, int src, int dst,
                            Message msg, std::uint64_t op_id) {
  auto& rs = *ranks_[static_cast<std::size_t>(src)];
  if (!disarmed_.load(std::memory_order_relaxed)) {
    for (auto it = rs.send_actions.begin(); it != rs.send_actions.end();
         ++it) {
      if (it->op_index != op_id) continue;
      const FaultAction a = *it;
      rs.send_actions.erase(it);
      apply_send_fault(a, transport, src, dst, std::move(msg), op_id,
                       /*nb_round=*/true);
      return;
    }
  }
  transport.deposit(dst, std::move(msg));
}

void FaultInjector::retry_deliver(Transport& transport, int dst) {
  // The retry timer fires on wall-clock, so only a retry that actually
  // flushes something records a span — empty polls would make the span
  // structure timing-dependent.
  const bool prof = obs::profiling_enabled();
  const std::uint64_t t0 = prof ? obs::now_ns() : 0;
  std::size_t flushed = 0;
  std::uint64_t bytes = 0;
  {
    std::lock_guard lock(buf_mu_);
    auto& sw = swallowed_[static_cast<std::size_t>(dst)];
    for (auto& m : sw) {
      bytes += m.payload.size();
      transport.deposit(dst, std::move(m));
      ++flushed;
    }
    sw.clear();
    for (auto it = deferred_.begin(); it != deferred_.end();) {
      if (it->dst == dst) {
        bytes += it->msg.payload.size();
        transport.deposit(dst, std::move(it->msg));
        it = deferred_.erase(it);
        ++flushed;
      } else {
        ++it;
      }
    }
  }
  if (flushed == 0) return;
  if (prof) {
    obs::record_span(obs::SpanKind::FaultRetry, "retry_deliver", t0,
                     obs::now_ns(), /*flow=*/0, flushed, bytes);
  }
  retransmits_.fetch_add(flushed, std::memory_order_relaxed);
  retransmit_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  std::ostringstream os;
  os << "retransmitted " << flushed
     << " message(s) to rank " << dst << " after recv timeout";
  record({epoch(), dst, op_count(dst), "retransmit", os.str()});
}

std::vector<FaultEvent> FaultInjector::events() const {
  std::vector<FaultEvent> out;
  {
    std::lock_guard lock(ev_mu_);
    out = events_;
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const FaultEvent& x, const FaultEvent& y) {
                     return std::tie(x.epoch, x.rank, x.op_index, x.kind) <
                            std::tie(y.epoch, y.rank, y.op_index, y.kind);
                   });
  return out;
}

std::uint64_t FaultInjector::op_count(int rank) const {
  return ranks_[static_cast<std::size_t>(rank)]->ops.load(
      std::memory_order_relaxed);
}

std::string FaultInjector::attribution_note() const {
  std::ostringstream os;
  os << "\nfault injection is active (plan seed " << plan_.seed << ", epoch "
     << epoch() << "); injected faults so far:";
  const auto evs = events();
  if (evs.empty()) {
    os << "\n  (none fired yet)";
  } else {
    for (const auto& e : evs) os << "\n  " << e.describe();
  }
  return os.str();
}

}  // namespace mbd::comm
