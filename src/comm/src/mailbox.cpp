#include "mbd/comm/mailbox.hpp"

#include <algorithm>

namespace mbd::comm {

bool Mailbox::matches(const Message& m, std::uint64_t context, int source,
                      int tag) const {
  if (m.context != context || m.source != source || m.tag != tag) return false;
  if (m.seq == 0) return true;
  const auto it = next_seq_.find(ChannelKey{context, source, tag});
  const std::uint64_t expected = it == next_seq_.end() ? 1 : it->second;
  return m.seq == expected;
}

void Mailbox::consumed(const Message& m) {
  if (m.seq == 0) return;
  next_seq_[ChannelKey{m.context, m.source, m.tag}] = m.seq + 1;
}

void Mailbox::push(Message msg) {
  {
    std::lock_guard lock(mu_);
    if (msg.seq != 0) {
      // Dedup by per-channel sequence number: a retransmission (or injected
      // duplicate) of an already-consumed or already-queued message is
      // dropped silently.
      const auto it =
          next_seq_.find(ChannelKey{msg.context, msg.source, msg.tag});
      const std::uint64_t expected = it == next_seq_.end() ? 1 : it->second;
      if (msg.seq < expected) return;
      const bool queued = std::any_of(
          queue_.begin(), queue_.end(), [&](const Message& q) {
            return q.seq == msg.seq && q.context == msg.context &&
                   q.source == msg.source && q.tag == msg.tag;
          });
      if (queued) return;
    }
    queue_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

Message Mailbox::pop(std::uint64_t context, int source, int tag,
                     const PopWatch* watch) {
  std::unique_lock lock(mu_);
  const auto now = std::chrono::steady_clock::now();
  constexpr auto kNever = std::chrono::steady_clock::time_point::max();
  const bool has_watchdog = watch != nullptr && watch->timeout.count() > 0;
  const bool has_retry = watch != nullptr &&
                         watch->retry_interval.count() > 0 &&
                         watch->on_retry != nullptr;
  const auto deadline = has_watchdog ? now + watch->timeout : kNever;
  auto next_retry = has_retry ? now + watch->retry_interval : kNever;
  for (;;) {
    const auto it =
        std::find_if(queue_.begin(), queue_.end(), [&](const Message& m) {
          return matches(m, context, source, tag);
        });
    if (it != queue_.end()) {
      Message msg = std::move(*it);
      queue_.erase(it);
      consumed(msg);
      return msg;
    }
    if (poisoned_) {
      throw PoisonedError(
          "mbd::comm fabric poisoned: another rank threw while this rank was "
          "blocked in recv");
    }
    if (!has_watchdog && !has_retry) {
      cv_.wait(lock);
      continue;
    }
    if (cv_.wait_until(lock, std::min(deadline, next_retry)) !=
        std::cv_status::timeout) {
      continue;
    }
    const auto woke = std::chrono::steady_clock::now();
    // Retry first: the retransmission may deliver the match the watchdog
    // would otherwise report as a deadlock. The loop head re-scans, so a
    // message that raced in while unlocked is consumed normally.
    if (has_retry && woke >= next_retry) {
      lock.unlock();
      watch->on_retry();
      lock.lock();
      next_retry = std::chrono::steady_clock::now() + watch->retry_interval;
      continue;
    }
    if (has_watchdog && woke >= deadline) {
      // Re-scan under the lock before declaring a deadlock: a matching
      // message may have raced in with the timeout.
      const auto late = std::find_if(
          queue_.begin(), queue_.end(), [&](const Message& m) {
            return matches(m, context, source, tag);
          });
      if (late == queue_.end() && !poisoned_) throw Error(watch->report());
    }
  }
}

bool Mailbox::try_pop(std::uint64_t context, int source, int tag,
                      Message& out) {
  std::lock_guard lock(mu_);
  const auto it =
      std::find_if(queue_.begin(), queue_.end(), [&](const Message& m) {
        return matches(m, context, source, tag);
      });
  if (it == queue_.end()) {
    // Match-first, poison-second: a delivered message is still consumable
    // after the fabric is poisoned, mirroring pop().
    if (poisoned_) {
      throw PoisonedError(
          "mbd::comm fabric poisoned: another rank threw while this rank was "
          "polling recv");
    }
    return false;
  }
  out = std::move(*it);
  queue_.erase(it);
  consumed(out);
  return true;
}

void Mailbox::poison() {
  {
    std::lock_guard lock(mu_);
    poisoned_ = true;
  }
  cv_.notify_all();
}

std::size_t Mailbox::pending() const {
  std::lock_guard lock(mu_);
  return queue_.size();
}

void Mailbox::clear() {
  std::lock_guard lock(mu_);
  for (const auto& m : queue_) {
    if (m.seq == 0) continue;
    auto& next = next_seq_[ChannelKey{m.context, m.source, m.tag}];
    next = std::max(next == 0 ? 1 : next, m.seq + 1);
  }
  queue_.clear();
}

void Mailbox::reset() {
  std::lock_guard lock(mu_);
  queue_.clear();
  next_seq_.clear();
  poisoned_ = false;
}

}  // namespace mbd::comm
