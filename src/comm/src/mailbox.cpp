#include "mbd/comm/mailbox.hpp"

#include <algorithm>

#include "mbd/support/check.hpp"

namespace mbd::comm {

void Mailbox::push(Message msg) {
  {
    std::lock_guard lock(mu_);
    queue_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

Message Mailbox::pop(std::uint64_t context, int source, int tag) {
  std::unique_lock lock(mu_);
  for (;;) {
    auto it = std::find_if(queue_.begin(), queue_.end(), [&](const Message& m) {
      return m.context == context && m.source == source && m.tag == tag;
    });
    if (it != queue_.end()) {
      Message msg = std::move(*it);
      queue_.erase(it);
      return msg;
    }
    if (poisoned_) {
      throw Error(
          "mbd::comm fabric poisoned: another rank threw while this rank was "
          "blocked in recv");
    }
    cv_.wait(lock);
  }
}

void Mailbox::poison() {
  {
    std::lock_guard lock(mu_);
    poisoned_ = true;
  }
  cv_.notify_all();
}

std::size_t Mailbox::pending() const {
  std::lock_guard lock(mu_);
  return queue_.size();
}

}  // namespace mbd::comm
