#include "mbd/comm/mailbox.hpp"

#include <algorithm>

namespace mbd::comm {

void Mailbox::push(Message msg) {
  {
    std::lock_guard lock(mu_);
    queue_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

Message Mailbox::pop(std::uint64_t context, int source, int tag,
                     const PopWatch* watch) {
  std::unique_lock lock(mu_);
  const auto deadline = watch != nullptr
                            ? std::chrono::steady_clock::now() + watch->timeout
                            : std::chrono::steady_clock::time_point::max();
  for (;;) {
    auto it = std::find_if(queue_.begin(), queue_.end(), [&](const Message& m) {
      return m.context == context && m.source == source && m.tag == tag;
    });
    if (it != queue_.end()) {
      Message msg = std::move(*it);
      queue_.erase(it);
      return msg;
    }
    if (poisoned_) {
      throw PoisonedError(
          "mbd::comm fabric poisoned: another rank threw while this rank was "
          "blocked in recv");
    }
    if (watch == nullptr) {
      cv_.wait(lock);
    } else if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      // Re-scan under the lock before declaring a deadlock: a matching
      // message may have raced in with the timeout.
      auto late = std::find_if(
          queue_.begin(), queue_.end(), [&](const Message& m) {
            return m.context == context && m.source == source && m.tag == tag;
          });
      if (late == queue_.end() && !poisoned_) throw Error(watch->report());
    }
  }
}

bool Mailbox::try_pop(std::uint64_t context, int source, int tag,
                      Message& out) {
  std::lock_guard lock(mu_);
  auto it = std::find_if(queue_.begin(), queue_.end(), [&](const Message& m) {
    return m.context == context && m.source == source && m.tag == tag;
  });
  if (it == queue_.end()) {
    // Match-first, poison-second: a delivered message is still consumable
    // after the fabric is poisoned, mirroring pop().
    if (poisoned_) {
      throw PoisonedError(
          "mbd::comm fabric poisoned: another rank threw while this rank was "
          "polling recv");
    }
    return false;
  }
  out = std::move(*it);
  queue_.erase(it);
  return true;
}

void Mailbox::poison() {
  {
    std::lock_guard lock(mu_);
    poisoned_ = true;
  }
  cv_.notify_all();
}

std::size_t Mailbox::pending() const {
  std::lock_guard lock(mu_);
  return queue_.size();
}

}  // namespace mbd::comm
