#include "mbd/comm/transport_tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "mbd/comm/fabric.hpp"

namespace mbd::comm {
namespace wire {
namespace {

void put_u8(std::vector<std::byte>& out, std::uint8_t v) {
  out.push_back(static_cast<std::byte>(v));
}

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFFU));
}

void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFFU));
}

void put_i32(std::vector<std::byte>& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

// Reserve the length prefix, append the body, patch the prefix.
std::vector<std::byte> begin_frame(FrameType type) {
  std::vector<std::byte> out;
  put_u32(out, 0);  // patched by end_frame
  put_u8(out, static_cast<std::uint8_t>(type));
  return out;
}

std::vector<std::byte> end_frame(std::vector<std::byte> out) {
  const auto len = static_cast<std::uint32_t>(out.size() - 4);
  for (int i = 0; i < 4; ++i)
    out[static_cast<std::size_t>(i)] =
        static_cast<std::byte>((len >> (8 * i)) & 0xFFU);
  return out;
}

// Bounds-checked little-endian reads over one frame body.
struct Cursor {
  const std::byte* p;
  std::size_t n;

  void need(std::size_t k) const {
    if (n < k) throw ::mbd::Error("mbd::comm wire: truncated frame");
  }
  std::uint8_t u8() {
    need(1);
    const auto v = static_cast<std::uint8_t>(*p);
    ++p;
    --n;
    return v;
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    p += 4;
    n -= 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    p += 8;
    n -= 8;
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
};

}  // namespace

std::vector<std::byte> encode_hello(int rank, int world_size) {
  auto out = begin_frame(FrameType::Hello);
  put_u32(out, kMagic);
  put_u32(out, kProtocolVersion);
  put_i32(out, world_size);
  put_i32(out, rank);
  return end_frame(std::move(out));
}

std::vector<std::byte> encode_message(int epoch, const Message& msg) {
  auto out = begin_frame(FrameType::Msg);
  out.reserve(out.size() + 36 + msg.payload.size());
  put_i32(out, epoch);
  put_u64(out, msg.context);
  put_i32(out, msg.source);
  put_i32(out, msg.tag);
  put_u64(out, msg.seq);
  put_u64(out, msg.trace_id);
  out.insert(out.end(), msg.payload.begin(), msg.payload.end());
  return end_frame(std::move(out));
}

std::vector<std::byte> encode_retry_request(int epoch, int starving_rank) {
  auto out = begin_frame(FrameType::RetryRequest);
  put_i32(out, epoch);
  put_i32(out, starving_rank);
  return end_frame(std::move(out));
}

std::vector<std::byte> encode_peer_failure(int epoch, int failed_rank,
                                           std::string_view what) {
  auto out = begin_frame(FrameType::PeerFailure);
  put_i32(out, epoch);
  put_i32(out, failed_rank);
  put_u32(out, static_cast<std::uint32_t>(what.size()));
  for (const char c : what) out.push_back(static_cast<std::byte>(c));
  return end_frame(std::move(out));
}

std::vector<std::byte> encode_goodbye() {
  return end_frame(begin_frame(FrameType::Goodbye));
}

void FrameDecoder::feed(std::span<const std::byte> bytes) {
  // Compact lazily: once the consumed prefix dominates, drop it so the
  // buffer does not grow without bound over a long-lived connection.
  if (pos_ > 0 && pos_ >= buf_.size() / 2) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

std::optional<Frame> FrameDecoder::next() {
  if (buffered() < 4) return std::nullopt;
  Cursor len_cur{buf_.data() + pos_, 4};
  const std::uint32_t len = len_cur.u32();
  if (len < 1 || len > kMaxFrameBytes) {
    throw ::mbd::Error("mbd::comm wire: bad frame length");
  }
  if (buffered() < 4 + static_cast<std::size_t>(len)) return std::nullopt;

  Cursor c{buf_.data() + pos_ + 4, len};
  Frame f;
  const std::uint8_t type = c.u8();
  switch (type) {
    case static_cast<std::uint8_t>(FrameType::Hello): {
      f.type = FrameType::Hello;
      const std::uint32_t magic = c.u32();
      const std::uint32_t version = c.u32();
      if (magic != kMagic || version != kProtocolVersion) {
        throw ::mbd::Error("mbd::comm wire: bad hello (magic/version)");
      }
      f.world_size = c.i32();
      f.rank = c.i32();
      break;
    }
    case static_cast<std::uint8_t>(FrameType::Msg): {
      f.type = FrameType::Msg;
      f.epoch = c.i32();
      f.msg.context = c.u64();
      f.msg.source = c.i32();
      f.msg.tag = c.i32();
      f.msg.seq = c.u64();
      f.msg.trace_id = c.u64();
      f.msg.payload.assign(c.p, c.p + c.n);
      break;
    }
    case static_cast<std::uint8_t>(FrameType::RetryRequest): {
      f.type = FrameType::RetryRequest;
      f.epoch = c.i32();
      f.rank = c.i32();
      break;
    }
    case static_cast<std::uint8_t>(FrameType::PeerFailure): {
      f.type = FrameType::PeerFailure;
      f.epoch = c.i32();
      f.rank = c.i32();
      const std::uint32_t what_len = c.u32();
      c.need(what_len);
      f.what.assign(reinterpret_cast<const char*>(c.p), what_len);
      break;
    }
    case static_cast<std::uint8_t>(FrameType::Goodbye): {
      f.type = FrameType::Goodbye;
      break;
    }
    default:
      throw ::mbd::Error("mbd::comm wire: unknown frame type");
  }
  pos_ += 4 + static_cast<std::size_t>(len);
  return f;
}

void write_all(int fd, std::span<const std::byte> bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      struct pollfd pfd {};
      pfd.fd = fd;
      pfd.events = POLLOUT;
      ::poll(&pfd, 1, /*timeout_ms=*/100);
      continue;
    }
    throw ::mbd::Error("mbd::comm wire: write failed (errno " +
                       std::to_string(errno) + ')');
  }
}

}  // namespace wire

namespace {

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  MBD_CHECK_MSG(::inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) == 1,
                "tcp transport: bad IPv4 address '" << host << '\'');
  return addr;
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

TcpTransport::TcpTransport(int world_size, int rank, const std::string& host,
                           std::uint16_t port, TcpOptions opts)
    : world_size_(world_size),
      rank_(rank),
      participants_(world_size + opts.spares),
      opts_(opts) {
  MBD_CHECK_GT(world_size_, 1);
  MBD_CHECK(opts_.spares >= 0);
  MBD_CHECK_MSG(rank_ >= 0 && rank_ < participants_,
                "tcp transport: rank " << rank_ << " out of range");
  local_slot_ = rank_ < world_size_ ? rank_ : -1;
  slot_owner_.resize(static_cast<std::size_t>(world_size_));
  for (int s = 0; s < world_size_; ++s)
    slot_owner_[static_cast<std::size_t>(s)] = s;
  dead_.assign(static_cast<std::size_t>(participants_), 0);
  peers_.reserve(static_cast<std::size_t>(participants_));
  for (int r = 0; r < participants_; ++r)
    peers_.push_back(std::make_unique<Peer>());

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  MBD_CHECK_MSG(listen_fd_ >= 0, "tcp transport: socket() failed (errno "
                                     << errno << ')');
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = make_addr(host, port);
  MBD_CHECK_MSG(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr)) == 0,
                "tcp transport: cannot bind " << host << ':' << port
                                              << " (errno " << errno << ')');
  MBD_CHECK_MSG(::listen(listen_fd_, participants_) == 0,
                "tcp transport: listen failed (errno " << errno << ')');
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  MBD_CHECK_MSG(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                              &bound_len) == 0,
                "tcp transport: getsockname failed (errno " << errno << ')');
  port_ = ntohs(bound.sin_port);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

TcpTransport::~TcpTransport() { shutdown(); }

void TcpTransport::accept_loop() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket shut down, or fatal — either way, stop
    }
    if (closing_.load(std::memory_order_relaxed)) {
      ::close(fd);
      break;
    }
    std::lock_guard lock(mu_);
    ++recv_loops_live_;
    recv_threads_.emplace_back(
        [this, fd] { receive_loop(/*peer_rank=*/-1, fd); });
  }
}

void TcpTransport::receive_loop(int peer_rank, int fd) {
  // peer_rank stays -1 until this connection's first frame — a Hello —
  // identifies the dialing rank. The same decoder keeps running afterwards:
  // a peer may pipeline its first messages directly behind the Hello.
  wire::FrameDecoder dec;
  std::vector<std::byte> buf(1U << 16);
  bool clean = false;
  bool running = true;
  while (running) {
    const ssize_t n = ::recv(fd, buf.data(), buf.size(), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // reset or force-closed
    }
    if (n == 0) break;  // EOF
    try {
      dec.feed({buf.data(), static_cast<std::size_t>(n)});
      while (auto f = dec.next()) {
        if (peer_rank < 0) {
          // The Hello's world_size field carries the total participant
          // count so actives and spares validate the same mesh shape.
          if (f->type != wire::FrameType::Hello ||
              f->world_size != participants_ || f->rank < 0 ||
              f->rank >= participants_ || f->rank == rank_) {
            running = false;  // stranger or misconfigured peer
            break;
          }
          bool duplicate = false;
          {
            std::lock_guard lock(mu_);
            if (peers_[static_cast<std::size_t>(f->rank)]->recv_fd >= 0) {
              duplicate = true;
            } else {
              peers_[static_cast<std::size_t>(f->rank)]->recv_fd = fd;
              peer_rank = f->rank;
              ++inbound_peers_;
            }
          }
          cv_.notify_all();
          if (duplicate) running = false;
          continue;
        }
        if (!handle_frame(peer_rank, std::move(*f))) {
          clean = true;
          running = false;
        }
      }
    } catch (const PoisonedError&) {
      // Local fabric torn down while depositing; keep draining — the peer's
      // Goodbye (or the next epoch's frames) still matter.
    } catch (const ::mbd::Error&) {
      if (peer_rank >= 0) fail_peer_phys(peer_rank, "malformed frame stream");
      running = false;
    }
  }
  if (!clean && peer_rank >= 0 &&
      !closing_.load(std::memory_order_relaxed)) {
    fail_peer_phys(peer_rank, "connection closed without goodbye");
  }
  if (peer_rank < 0) ::close(fd);  // never registered; nobody else owns it
  {
    std::lock_guard lock(mu_);
    --recv_loops_live_;
  }
  cv_.notify_all();
}

bool TcpTransport::handle_frame(int peer_rank, wire::Frame f) {
  switch (f.type) {
    case wire::FrameType::Goodbye: {
      std::lock_guard lock(mu_);
      ++goodbyes_seen_;
      return false;
    }
    case wire::FrameType::PeerFailure: {
      bool current = false;
      {
        std::lock_guard lock(mu_);
        current = f.epoch >= epoch_;
      }
      // A stale failure is a ghost of an epoch both sides already tore
      // down; only a current-or-future one poisons this run.
      if (current) fail_peer(f.rank, f.what);
      return true;
    }
    case wire::FrameType::Msg:
    case wire::FrameType::RetryRequest: {
      std::shared_ptr<FaultInjector> injector;
      {
        std::lock_guard lock(mu_);
        if (f.epoch > epoch_) {
          // The sender already restarted into a later epoch; buffer until
          // our own rebuild attaches a fresh fabric and flushes these.
          pending_.push_back(std::move(f));
          return true;
        }
        if (f.epoch < epoch_) return true;  // stale — drop
        if (f.type == wire::FrameType::Msg) {
          if (fabric_ == nullptr) {
            // Current-epoch frame but no local World yet: a fast peer can
            // legitimately race ahead of our World construction (each
            // process builds its World on its own clock after the mesh
            // handshake). Buffer — attach() flushes — rather than drop.
            pending_.push_back(std::move(f));
            return true;
          }
          deposit_local_locked(std::move(f.msg));
          return true;
        }
        if (fabric_ != nullptr) injector = fabric_->injector;
      }
      // RetryRequest: the starving remote rank asks us to flush whatever
      // our injector swallowed or deferred for it; the flush re-enters
      // deposit() and goes back over the wire.
      if (injector != nullptr) injector->retry_deliver(*this, f.rank);
      return true;
    }
    case wire::FrameType::Hello:
      fail_peer_phys(peer_rank, "protocol error: unexpected Hello mid-stream");
      return false;
  }
  return true;
}

void TcpTransport::deposit_local_locked(Message msg) {
  if (fabric_ == nullptr) return;  // between runs; nothing to feed
  if (local_slot_ < 0) return;     // idle spare: no mailbox to feed yet
  if (fabric_->poisoned.load(std::memory_order_acquire)) return;
  fabric_->mailboxes[static_cast<std::size_t>(local_slot_)].push(
      std::move(msg));
}

int TcpTransport::local_slot() const {
  std::lock_guard lock(mu_);
  return local_slot_;
}

void TcpTransport::fail_peer(int slot, const std::string& what) {
  detail::Fabric* fab = nullptr;
  {
    std::lock_guard lock(mu_);
    if (!failure_) {
      std::ostringstream os;
      os << "rank " << slot << " failed off-process: " << what;
      failure_ = std::make_exception_ptr(RankFailure(os.str(), slot));
      failed_slot_ = slot;
    }
    fab = fabric_;
  }
  cv_.notify_all();  // wake await_failure on an idle spare
  if (fab != nullptr) fab->poison_all();
}

void TcpTransport::fail_peer_phys(int phys, const std::string& what) {
  int slot = -1;
  {
    std::lock_guard lock(mu_);
    // A participant replaced by promotion is expected to disappear — its
    // late EOF must not poison the repaired epoch. An idle spare dying only
    // shrinks the pool; no active slot is affected.
    if (dead_[static_cast<std::size_t>(phys)] != 0) return;
    for (int s = 0; s < world_size_; ++s) {
      if (slot_owner_[static_cast<std::size_t>(s)] == phys) {
        slot = s;
        break;
      }
    }
  }
  if (slot < 0) return;
  fail_peer(slot, what);
}

void TcpTransport::connect_mesh(const std::vector<TcpEndpoint>& peers) {
  MBD_CHECK_EQ(peers.size(), static_cast<std::size_t>(participants_));
  const auto deadline =
      std::chrono::steady_clock::now() + opts_.connect_timeout;
  const auto hello = wire::encode_hello(rank_, participants_);
  for (int r = 0; r < participants_; ++r) {
    if (r == rank_) continue;
    const sockaddr_in addr =
        make_addr(peers[static_cast<std::size_t>(r)].host,
                  peers[static_cast<std::size_t>(r)].port);
    int fd = -1;
    while (true) {
      fd = ::socket(AF_INET, SOCK_STREAM, 0);
      MBD_CHECK_MSG(fd >= 0, "tcp transport: socket() failed (errno "
                                 << errno << ')');
      if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) == 0) {
        break;
      }
      ::close(fd);
      fd = -1;
      // Peers start in any order; refused dials retry until the deadline.
      MBD_CHECK_MSG(std::chrono::steady_clock::now() < deadline,
                    "tcp transport: rank "
                        << rank_ << " cannot connect to rank " << r << " at "
                        << peers[static_cast<std::size_t>(r)].host << ':'
                        << peers[static_cast<std::size_t>(r)].port);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    set_nodelay(fd);
    wire::write_all(fd, hello);
    std::lock_guard lock(peers_[static_cast<std::size_t>(r)]->send_mu);
    peers_[static_cast<std::size_t>(r)]->send_fd = fd;
  }
  std::unique_lock lock(mu_);
  MBD_CHECK_MSG(
      cv_.wait_until(lock, deadline,
                     [&] { return inbound_peers_ == participants_ - 1; }),
      "tcp transport: rank " << rank_ << " timed out waiting for "
                             << participants_ - 1 - inbound_peers_
                             << " peer(s) to dial in");
}

void TcpTransport::deposit(int dst, Message msg) {
  int epoch = 0;
  bool local = false;
  {
    std::lock_guard lock(mu_);
    epoch = epoch_;
    local = dst == local_slot_;
    // Local deposits happen on retransmission flushes whose starving rank
    // is this participant's slot.
    if (local) deposit_local_locked(std::move(msg));
  }
  if (!local) send_frame(dst, wire::encode_message(epoch, msg));
}

void TcpTransport::send_frame(int dst_slot, std::span<const std::byte> bytes) {
  int phys = dst_slot;
  {
    // Slots above world_size never occur; a slot's owner changes only under
    // promote(), which runs with no rank threads sending.
    std::lock_guard lock(mu_);
    if (dst_slot >= 0 && dst_slot < world_size_) {
      phys = slot_owner_[static_cast<std::size_t>(dst_slot)];
    }
  }
  Peer& p = *peers_[static_cast<std::size_t>(phys)];
  std::lock_guard lock(p.send_mu);
  if (p.send_fd < 0) {
    throw PoisonedError("tcp transport: no connection to rank " +
                        std::to_string(dst_slot));
  }
  try {
    wire::write_all(p.send_fd, bytes);
  } catch (const ::mbd::Error& e) {
    // The wire to dst is gone: record the rank failure (poisoning the local
    // fabric) and surface a PoisonedError to the sending rank thread, which
    // World::run treats as the secondary wakeup it is.
    fail_peer(dst_slot, std::string("send failed: ") + e.what());
    throw PoisonedError("tcp transport: send to rank " +
                        std::to_string(dst_slot) + " failed");
  }
}

void TcpTransport::request_retransmit(int dst) {
  int epoch = 0;
  int my_slot = -1;
  {
    std::lock_guard lock(mu_);
    epoch = epoch_;
    my_slot = local_slot_;
  }
  const auto frame = wire::encode_retry_request(epoch, dst);
  for (int s = 0; s < world_size_; ++s) {
    if (s == my_slot) continue;
    try {
      send_frame(s, frame);
    } catch (const PoisonedError&) {
      // Retry ticks must not add failure causes; the disconnect path has
      // already recorded one if the peer is truly gone.
    }
  }
}

void TcpTransport::broadcast_failure(const std::string& what) {
  int epoch = 0;
  int my_slot = -1;
  {
    std::lock_guard lock(mu_);
    epoch = epoch_;
    my_slot = local_slot_;
  }
  if (my_slot < 0) return;  // an idle spare has no slot to report
  // Idle spares hold no slot but are failure *detectors*: they must hear
  // PeerFailure too (their await_failure is what triggers promotion), so the
  // broadcast also goes to every physical participant outside the slot
  // table.
  std::vector<int> idle_spares;
  {
    std::lock_guard lock(mu_);
    for (int p = world_size_; p < participants_; ++p) {
      if (p == rank_ || dead_[static_cast<std::size_t>(p)] != 0) continue;
      bool owns_slot = false;
      for (int s = 0; s < world_size_; ++s) {
        if (slot_owner_[static_cast<std::size_t>(s)] == p) owns_slot = true;
      }
      if (!owns_slot) idle_spares.push_back(p);
    }
  }
  const auto frame = wire::encode_peer_failure(epoch, my_slot, what);
  for (int s = 0; s < world_size_; ++s) {
    if (s == my_slot) continue;
    try {
      send_frame(s, frame);
    } catch (const PoisonedError&) {
      // Best effort: a peer that is already gone does not need the news.
    }
  }
  for (const int p : idle_spares) {
    try {
      send_frame(p, frame);  // dst >= world_size: routed by physical id
    } catch (const PoisonedError&) {
      // A dead spare just shrinks the pool.
    }
  }
}

std::exception_ptr TcpTransport::take_failure() {
  std::lock_guard lock(mu_);
  return std::exchange(failure_, nullptr);
}

void TcpTransport::attach(detail::Fabric* fabric) {
  // Called with no local rank threads running (Fabric construction, or a
  // detach at the start of a rebuild/repair). Flush frames buffered for the
  // epoch this fabric will run: peers that restarted before us may have
  // sent them already. Detached (nullptr), inbound frames buffer instead of
  // landing in a dying fabric's mailboxes.
  std::deque<wire::Frame> due;
  {
    std::lock_guard lock(mu_);
    fabric_ = fabric;
    if (fabric == nullptr) return;
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->epoch <= epoch_) {
        due.push_back(std::move(*it));
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& f : due) handle_frame(f.msg.source, std::move(f));
}

void TcpTransport::begin_epoch(int epoch) {
  std::lock_guard lock(mu_);
  epoch_ = epoch;
  failure_ = nullptr;
  failed_slot_ = -1;
}

void TcpTransport::promote(int slot, int spare) {
  std::lock_guard lock(mu_);
  MBD_CHECK_MSG(slot >= 0 && slot < world_size_,
                "tcp transport: promoted slot " << slot << " out of range");
  MBD_CHECK_MSG(spare >= 0 && spare < participants_,
                "tcp transport: spare participant " << spare
                                                    << " out of range");
  const int old = slot_owner_[static_cast<std::size_t>(slot)];
  dead_[static_cast<std::size_t>(old)] = 1;
  slot_owner_[static_cast<std::size_t>(slot)] = spare;
  if (spare == rank_) local_slot_ = slot;
}

std::optional<int> TcpTransport::await_failure(
    std::chrono::milliseconds timeout) {
  std::unique_lock lock(mu_);
  cv_.wait_for(lock, timeout,
               [&] { return failed_slot_ >= 0 || goodbyes_seen_ > 0; });
  if (failed_slot_ >= 0) return failed_slot_;
  // A clean Goodbye first means the run finished without needing this
  // spare (or the wait timed out with nothing happening).
  return std::nullopt;
}

void TcpTransport::shutdown() {
  if (closing_.exchange(true)) return;
  // Half-close every send channel behind a Goodbye: peers read the Goodbye,
  // then EOF, and their receive loops exit clean.
  const auto goodbye = wire::encode_goodbye();
  for (int r = 0; r < participants_; ++r) {
    if (r == rank_) continue;
    Peer& p = *peers_[static_cast<std::size_t>(r)];
    std::lock_guard lock(p.send_mu);
    if (p.send_fd >= 0) {
      try {
        wire::write_all(p.send_fd, goodbye);
      } catch (const ::mbd::Error&) {
        // Peer already gone; its receive loop saw the disconnect.
      }
      ::shutdown(p.send_fd, SHUT_WR);
    }
  }
  // Drain until every peer said Goodbye (or died): this doubles as the exit
  // barrier that keeps late senders from seeing a vanished peer. Stuck
  // readers are force-closed after the grace period.
  {
    std::unique_lock lock(mu_);
    if (!cv_.wait_for(lock, opts_.shutdown_timeout,
                      [&] { return recv_loops_live_ == 0; })) {
      for (auto& p : peers_) {
        if (p->recv_fd >= 0) ::shutdown(p->recv_fd, SHUT_RD);
      }
    }
  }
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> drains;
  {
    std::lock_guard lock(mu_);
    drains.swap(recv_threads_);
  }
  for (auto& t : drains) t.join();
  close_all_fds();
}

void TcpTransport::kill_for_test() {
  if (closing_.exchange(true)) return;
  for (auto& p : peers_) {
    std::lock_guard lock(p->send_mu);
    if (p->send_fd >= 0) ::shutdown(p->send_fd, SHUT_RDWR);
  }
  {
    // recv_fd registration happens under mu_ (receive_loop), not send_mu.
    std::lock_guard lock(mu_);
    for (auto& p : peers_) {
      if (p->recv_fd >= 0) ::shutdown(p->recv_fd, SHUT_RDWR);
    }
  }
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> drains;
  {
    std::lock_guard lock(mu_);
    drains.swap(recv_threads_);
  }
  for (auto& t : drains) t.join();
  close_all_fds();
}

void TcpTransport::close_all_fds() {
  for (auto& p : peers_) {
    std::lock_guard lock(p->send_mu);
    if (p->send_fd >= 0) {
      ::close(p->send_fd);
      p->send_fd = -1;
    }
    if (p->recv_fd >= 0) {
      ::close(p->recv_fd);
      p->recv_fd = -1;
    }
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace mbd::comm
