#include "mbd/comm/world.hpp"

#include <chrono>
#include <exception>
#include <sstream>
#include <thread>
#include <vector>

#include "mbd/obs/profiler.hpp"
#include "mbd/support/check.hpp"

namespace mbd::comm {
namespace {

bool is_poison_error(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const PoisonedError&) {
    return true;
  } catch (...) {
    return false;
  }
}

std::string describe_error(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const std::exception& ex) {
    return ex.what();
  } catch (...) {
    return "unknown error";
  }
}

}  // namespace

World::World(int size) : size_(size) {
  MBD_CHECK_GT(size, 0);
  fabric_ = std::make_shared<detail::Fabric>(size);
#ifndef NDEBUG
  enable_validation();
#endif
}

World::World(int size, int local_rank, std::shared_ptr<Transport> transport)
    : size_(size), local_rank_(local_rank) {
  MBD_CHECK_GT(size, 0);
  MBD_CHECK_MSG(local_rank >= 0 && local_rank < size,
                "local rank " << local_rank << " out of range for world size "
                              << size);
  MBD_CHECK_MSG(transport != nullptr,
                "a distributed World needs a connected transport");
  fabric_ = std::make_shared<detail::Fabric>(size, std::move(transport));
#ifndef NDEBUG
  enable_validation();
#endif
}

const Transport& World::transport() const { return *fabric_->transport; }

void World::configure_validator(Validator& v) const {
  v.set_timeout_scale(watchdog_scale(fabric_->transport->latency()));
  if (distributed()) v.set_local_only(true);
}

void World::run(const std::function<void(Comm&)>& fn) {
  MBD_CHECK_MSG(!fabric_->poisoned.load(std::memory_order_acquire),
                "World was poisoned by a previous failed run; create a new one");
  const auto members = std::make_shared<const std::vector<int>>([&] {
    std::vector<int> m(static_cast<std::size_t>(size_));
    for (int i = 0; i < size_; ++i) m[static_cast<std::size_t>(i)] = i;
    return m;
  }());

  // Thread-backed worlds spawn every rank; a distributed world spawns only
  // the one rank this process hosts (its peers are other processes reached
  // through the transport).
  const std::vector<int> local_ranks = [&] {
    if (distributed()) return std::vector<int>{local_rank_};
    std::vector<int> all(static_cast<std::size_t>(size_));
    for (int i = 0; i < size_; ++i) all[static_cast<std::size_t>(i)] = i;
    return all;
  }();

  std::vector<std::exception_ptr> errors(local_ranks.size());
  std::vector<std::thread> threads;
  threads.reserve(local_ranks.size());
  for (std::size_t i = 0; i < local_ranks.size(); ++i) {
    const int r = local_ranks[i];
    threads.emplace_back([&, i, r] {
      obs::bind_thread(r);
      try {
        Comm comm(fabric_, /*context=*/1, members, r);
        fn(comm);
      } catch (...) {
        errors[i] = std::current_exception();
        fabric_->poison_all();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (distributed()) {
    // A transport-detected failure (peer process died mid-run, or a remote
    // rank broadcast its primary error) is the cause; the local rank's
    // PoisonedError is merely its wakeup. Rethrow the cause — always a
    // RankFailure, so run_restartable coordinates the restart off-process.
    if (const auto transport_failure = fabric_->transport->take_failure()) {
      std::rethrow_exception(transport_failure);
    }
    if (errors[0]) {
      // This process failed first: tell the peers why before rethrowing, so
      // their runs fail with a named RankFailure instead of a stuck recv.
      if (!is_poison_error(errors[0])) {
        fabric_->transport->broadcast_failure(describe_error(errors[0]));
      }
      std::rethrow_exception(errors[0]);
    }
  } else {
    // Rethrow the primary failure: the first rank (by rank order) whose
    // error is not a secondary PoisonedError wakeup. Pure-poison error sets
    // (all ranks woken by an external poisoner) fall back to the first
    // error.
    std::exception_ptr first;
    for (const auto& e : errors) {
      if (!e) continue;
      if (!first) first = e;
      if (!is_poison_error(e)) {
        std::rethrow_exception(e);
      }
    }
    if (first) std::rethrow_exception(first);
  }
  if (Validator* v = fabric_->validator.get()) {
    // Handles cancelled during exception unwind (the RAII path in
    // ~CollectiveHandle) are not leaks, but their remaining schedule
    // messages are still parked in the mailboxes and would cross-match a
    // later run's tag-block reuse. Drain everything so the World stays
    // usable after a caught-and-recovered failure.
    if (v->take_cancelled() > 0) {
      for (auto& mb : fabric_->mailboxes) mb.clear();
      if (fabric_->injector) fabric_->injector->drop_pending();
    }
    // A handle that was initiated but never waited leaves schedule messages
    // parked in the mailboxes, corrupting the next run. Surface it as a
    // named error (which op, which rank) rather than a later generic
    // deadlock.
    const auto leaked = v->outstanding_nonblocking();
    if (!leaked.empty()) {
      std::ostringstream os;
      os << "leaked CollectiveHandle: " << leaked.size()
         << " nonblocking operation(s) were initiated but never completed "
            "(wait() or test()-to-done every handle before it is destroyed):";
      for (const auto& l : leaked) os << "\n  " << l;
      throw ValidationError(os.str());
    }
  }
}

RecoveryReport World::run_restartable(const std::function<void(Comm&)>& fn,
                                      int max_restarts) {
  MBD_CHECK(max_restarts >= 0);
  RecoveryReport rep;
  for (int attempt = 0;; ++attempt) {
    try {
      run(fn);
      if (fabric_->injector) rep.events = fabric_->injector->events();
      return rep;
    } catch (const RankFailure& e) {
      if (attempt >= max_restarts) throw;
      ++rep.restarts;
      std::ostringstream os;
      os << "attempt " << attempt << " failed (" << e.what()
         << "); restarting as epoch " << attempt + 1;
      rep.log.push_back(os.str());
      const auto t0 = std::chrono::steady_clock::now();
      rebuild_fabric(attempt + 1);
      rep.repair_ns.push_back(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()));
    }
  }
}

void World::set_spares(int spares) {
  MBD_CHECK(spares >= 0);
  spares_ = spares;
}

RecoveryReport World::run_promotable(const std::function<void(Comm&)>& fn) {
  RecoveryReport rep;
  for (int attempt = 0;; ++attempt) {
    try {
      run(fn);
      if (fabric_->injector) rep.events = fabric_->injector->events();
      return rep;
    } catch (const RankFailure& e) {
      const int failed = e.failed_rank();
      // No spare left, an unattributed failure (no slot to refill), or this
      // process *is* the victim (its slot is being given away): the failure
      // is not recoverable by promotion here.
      if (static_cast<int>(rep.promotions.size()) >= spares_) throw;
      if (failed < 0 || failed >= size_) throw;
      if (distributed() && failed == local_rank_) throw;
      const int next_epoch = attempt + 1;
      // Spares are consumed in participant-id order: every survivor (and the
      // spare itself, off-process) computes the same id without agreement
      // traffic.
      const int spare = size_ + static_cast<int>(rep.promotions.size());
      const auto t0 = std::chrono::steady_clock::now();
      fabric_->transport->promote(failed, spare);
      repair_fabric_in_place(next_epoch);
      rep.repair_ns.push_back(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()));
      std::ostringstream os;
      os << "attempt " << attempt << " failed (" << e.what()
         << "); promoted spare " << spare << " into rank " << failed
         << "'s slot for epoch " << next_epoch;
      rep.log.push_back(os.str());
      rep.promotions.push_back({next_epoch, failed, spare, e.what()});
    }
  }
}

void World::repair_fabric_in_place(int next_epoch) {
  // The surgical counterpart of rebuild_fabric: nothing is reallocated and
  // no fabric teardown happens. Only the per-rank mailbox state (reset to a
  // fresh epoch for every slot — the dead rank's queued frames vanish, the
  // survivors' sequence cursors restart at 1) and the transient
  // validator/trace/recorder state are rebuilt. Survivors keep their
  // process, threads-to-be, transport connections, and injector; the
  // promoted spare simply occupies the dead slot next run.
  const bool prof = obs::profiling_enabled();
  const std::uint64_t t0 = prof ? obs::now_ns() : 0;
  // Same ordering contract as rebuild_fabric: detach (so frames from
  // already-promoted fast peers buffer instead of landing in mailboxes that
  // are about to be reset), then advance the transport epoch — stale frames
  // and late PeerFailure ghosts of the failed epoch drop — and attach last,
  // flushing the buffered frames into the reset mailboxes.
  fabric_->transport->attach(nullptr);
  fabric_->transport->begin_epoch(next_epoch);
  for (auto& mb : fabric_->mailboxes) mb.reset();
  fabric_->poisoned.store(false, std::memory_order_release);
  fabric_->next_msg_id.store(1, std::memory_order_relaxed);
  fabric_->counters.reset();
  if (fabric_->validator) fabric_->validator->reset_transient();
  if (fabric_->trace) {
    for (auto& r : fabric_->trace->ranks) r.clear();
  }
  if (fabric_->recorder) {
    for (auto& r : fabric_->recorder->ranks) {
      r.events.clear();
      r.next_nb_token = 1;
    }
  }
  fabric_->transport->attach(fabric_.get());
  if (fabric_->injector) fabric_->injector->begin_epoch(next_epoch);
  if (prof) {
    obs::record_span(obs::SpanKind::Promotion, "repair_fabric", t0,
                     obs::now_ns(), /*flow=*/0,
                     static_cast<std::uint64_t>(next_epoch), 0);
  }
}

void World::rebuild_fabric(int next_epoch) {
  // Tear down the poisoned fabric and rebuild with the same configuration.
  // The transport and injector are shared across fabrics: the transport
  // detaches first (a peer that restarted faster may already be sending the
  // new epoch's frames, and depositing them into the dying fabric would lose
  // them — detached, they buffer), then advances its epoch (frames of the
  // failed epoch become stale and drop), and the buffered new-epoch frames
  // flush into the fresh mailboxes during attach. The injector's event log
  // is cumulative while its trigger state re-arms for the next epoch.
  fabric_->transport->attach(nullptr);
  fabric_->transport->begin_epoch(next_epoch);
  auto fresh = std::make_shared<detail::Fabric>(size_, fabric_->transport);
  if (fabric_->validator) {
    fresh->validator = std::make_unique<Validator>(size_);
    fresh->validator->adopt_settings(*fabric_->validator);
  }
  if (fabric_->trace) {
    auto t = std::make_unique<Trace>();
    t->ranks.resize(static_cast<std::size_t>(size_));
    fresh->trace = std::move(t);
  }
  if (fabric_->recorder) {
    fresh->recorder = std::make_unique<ScheduleRecording>(size_);
  }
  fresh->injector = fabric_->injector;
  fabric_ = std::move(fresh);
  if (fabric_->injector) fabric_->injector->begin_epoch(next_epoch);
}

void World::install_faults(FaultPlan plan, FaultConfig cfg) {
  MBD_CHECK_MSG(!fabric_->poisoned.load(std::memory_order_acquire),
                "cannot install faults on a poisoned World");
  fabric_->injector =
      std::make_shared<FaultInjector>(std::move(plan), cfg, size_);
}

FaultInjector* World::fault_injector() const {
  return fabric_->injector.get();
}

StatsSnapshot World::stats() const { return fabric_->counters.snapshot(); }

void World::reset_stats() { fabric_->counters.reset(); }

void World::enable_tracing() {
  if (fabric_->trace) return;
  auto t = std::make_unique<Trace>();
  t->ranks.resize(static_cast<std::size_t>(size_));
  fabric_->trace = std::move(t);
}

const Trace& World::trace() const {
  static const Trace kEmpty{};
  return fabric_->trace ? *fabric_->trace : kEmpty;
}

void World::reset_trace() {
  if (!fabric_->trace) return;
  for (auto& r : fabric_->trace->ranks) r.clear();
}

void World::enable_schedule_recording() {
  if (fabric_->recorder) return;
  fabric_->recorder = std::make_unique<ScheduleRecording>(size_);
}

const ScheduleRecording& World::schedule_recording() const {
  static const ScheduleRecording kEmpty{};
  return fabric_->recorder ? *fabric_->recorder : kEmpty;
}

void World::reset_schedule_recording() {
  if (!fabric_->recorder) return;
  for (auto& r : fabric_->recorder->ranks) {
    r.events.clear();
    r.next_nb_token = 1;
  }
}

void World::enable_validation() {
  if (fabric_->validator) return;
  fabric_->validator = std::make_unique<Validator>(size_);
  configure_validator(*fabric_->validator);
}

void World::disable_validation() { fabric_->validator.reset(); }

bool World::validation_enabled() const {
  return fabric_->validator != nullptr;
}

void World::set_validation_timeout(std::chrono::milliseconds t) {
  enable_validation();
  fabric_->validator->set_timeout(t);
}

std::chrono::milliseconds World::validation_timeout() const {
  return fabric_->validator ? fabric_->validator->timeout()
                            : std::chrono::milliseconds{0};
}

}  // namespace mbd::comm
