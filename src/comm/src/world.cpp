#include "mbd/comm/world.hpp"

#include <exception>
#include <sstream>
#include <thread>
#include <vector>

#include "mbd/support/check.hpp"

namespace mbd::comm {
namespace {

bool is_poison_error(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const PoisonedError&) {
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace

World::World(int size) : size_(size) {
  MBD_CHECK_GT(size, 0);
  fabric_ = std::make_shared<detail::Fabric>(size);
#ifndef NDEBUG
  enable_validation();
#endif
}

void World::run(const std::function<void(Comm&)>& fn) {
  MBD_CHECK_MSG(!fabric_->poisoned.load(std::memory_order_acquire),
                "World was poisoned by a previous failed run; create a new one");
  auto members = std::make_shared<const std::vector<int>>([&] {
    std::vector<int> m(static_cast<std::size_t>(size_));
    for (int i = 0; i < size_; ++i) m[static_cast<std::size_t>(i)] = i;
    return m;
  }());

  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(size_));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([&, r] {
      try {
        Comm comm(fabric_, /*context=*/1, members, r);
        fn(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        fabric_->poison_all();
      }
    });
  }
  for (auto& t : threads) t.join();
  // Rethrow the primary failure: the first rank (by rank order) whose error
  // is not a secondary PoisonedError wakeup. Pure-poison error sets (all
  // ranks woken by an external poisoner) fall back to the first error.
  std::exception_ptr first;
  for (const auto& e : errors) {
    if (!e) continue;
    if (!first) first = e;
    if (!is_poison_error(e)) {
      std::rethrow_exception(e);
    }
  }
  if (first) std::rethrow_exception(first);
  // A handle that was initiated but never waited leaves schedule messages
  // parked in the mailboxes, corrupting the next run. Surface it as a named
  // error (which op, which rank) rather than a later generic deadlock.
  if (Validator* v = fabric_->validator.get()) {
    const auto leaked = v->outstanding_nonblocking();
    if (!leaked.empty()) {
      std::ostringstream os;
      os << "leaked CollectiveHandle: " << leaked.size()
         << " nonblocking operation(s) were initiated but never completed "
            "(wait() or test()-to-done every handle before it is destroyed):";
      for (const auto& l : leaked) os << "\n  " << l;
      throw ValidationError(os.str());
    }
  }
}

StatsSnapshot World::stats() const { return fabric_->counters.snapshot(); }

void World::reset_stats() { fabric_->counters.reset(); }

void World::enable_tracing() {
  if (fabric_->trace) return;
  auto t = std::make_unique<Trace>();
  t->ranks.resize(static_cast<std::size_t>(size_));
  fabric_->trace = std::move(t);
}

const Trace& World::trace() const {
  static const Trace kEmpty{};
  return fabric_->trace ? *fabric_->trace : kEmpty;
}

void World::reset_trace() {
  if (!fabric_->trace) return;
  for (auto& r : fabric_->trace->ranks) r.clear();
}

void World::enable_validation() {
  if (fabric_->validator) return;
  fabric_->validator = std::make_unique<Validator>(size_);
}

void World::disable_validation() { fabric_->validator.reset(); }

bool World::validation_enabled() const {
  return fabric_->validator != nullptr;
}

void World::set_validation_timeout(std::chrono::milliseconds t) {
  enable_validation();
  fabric_->validator->set_timeout(t);
}

}  // namespace mbd::comm
