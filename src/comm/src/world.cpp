#include "mbd/comm/world.hpp"

#include <exception>
#include <sstream>
#include <thread>
#include <vector>

#include "mbd/obs/profiler.hpp"
#include "mbd/support/check.hpp"

namespace mbd::comm {
namespace {

bool is_poison_error(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const PoisonedError&) {
    return true;
  } catch (...) {
    return false;
  }
}

std::string describe_error(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const std::exception& ex) {
    return ex.what();
  } catch (...) {
    return "unknown error";
  }
}

}  // namespace

World::World(int size) : size_(size) {
  MBD_CHECK_GT(size, 0);
  fabric_ = std::make_shared<detail::Fabric>(size);
#ifndef NDEBUG
  enable_validation();
#endif
}

World::World(int size, int local_rank, std::shared_ptr<Transport> transport)
    : size_(size), local_rank_(local_rank) {
  MBD_CHECK_GT(size, 0);
  MBD_CHECK_MSG(local_rank >= 0 && local_rank < size,
                "local rank " << local_rank << " out of range for world size "
                              << size);
  MBD_CHECK_MSG(transport != nullptr,
                "a distributed World needs a connected transport");
  fabric_ = std::make_shared<detail::Fabric>(size, std::move(transport));
#ifndef NDEBUG
  enable_validation();
#endif
}

const Transport& World::transport() const { return *fabric_->transport; }

void World::configure_validator(Validator& v) const {
  v.set_timeout_scale(watchdog_scale(fabric_->transport->latency()));
  if (distributed()) v.set_local_only(true);
}

void World::run(const std::function<void(Comm&)>& fn) {
  MBD_CHECK_MSG(!fabric_->poisoned.load(std::memory_order_acquire),
                "World was poisoned by a previous failed run; create a new one");
  auto members = std::make_shared<const std::vector<int>>([&] {
    std::vector<int> m(static_cast<std::size_t>(size_));
    for (int i = 0; i < size_; ++i) m[static_cast<std::size_t>(i)] = i;
    return m;
  }());

  // Thread-backed worlds spawn every rank; a distributed world spawns only
  // the one rank this process hosts (its peers are other processes reached
  // through the transport).
  const std::vector<int> local_ranks = [&] {
    if (distributed()) return std::vector<int>{local_rank_};
    std::vector<int> all(static_cast<std::size_t>(size_));
    for (int i = 0; i < size_; ++i) all[static_cast<std::size_t>(i)] = i;
    return all;
  }();

  std::vector<std::exception_ptr> errors(local_ranks.size());
  std::vector<std::thread> threads;
  threads.reserve(local_ranks.size());
  for (std::size_t i = 0; i < local_ranks.size(); ++i) {
    const int r = local_ranks[i];
    threads.emplace_back([&, i, r] {
      obs::bind_thread(r);
      try {
        Comm comm(fabric_, /*context=*/1, members, r);
        fn(comm);
      } catch (...) {
        errors[i] = std::current_exception();
        fabric_->poison_all();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (distributed()) {
    // A transport-detected failure (peer process died mid-run, or a remote
    // rank broadcast its primary error) is the cause; the local rank's
    // PoisonedError is merely its wakeup. Rethrow the cause — always a
    // RankFailure, so run_restartable coordinates the restart off-process.
    if (auto transport_failure = fabric_->transport->take_failure()) {
      std::rethrow_exception(transport_failure);
    }
    if (errors[0]) {
      // This process failed first: tell the peers why before rethrowing, so
      // their runs fail with a named RankFailure instead of a stuck recv.
      if (!is_poison_error(errors[0])) {
        fabric_->transport->broadcast_failure(describe_error(errors[0]));
      }
      std::rethrow_exception(errors[0]);
    }
  } else {
    // Rethrow the primary failure: the first rank (by rank order) whose
    // error is not a secondary PoisonedError wakeup. Pure-poison error sets
    // (all ranks woken by an external poisoner) fall back to the first
    // error.
    std::exception_ptr first;
    for (const auto& e : errors) {
      if (!e) continue;
      if (!first) first = e;
      if (!is_poison_error(e)) {
        std::rethrow_exception(e);
      }
    }
    if (first) std::rethrow_exception(first);
  }
  if (Validator* v = fabric_->validator.get()) {
    // Handles cancelled during exception unwind (the RAII path in
    // ~CollectiveHandle) are not leaks, but their remaining schedule
    // messages are still parked in the mailboxes and would cross-match a
    // later run's tag-block reuse. Drain everything so the World stays
    // usable after a caught-and-recovered failure.
    if (v->take_cancelled() > 0) {
      for (auto& mb : fabric_->mailboxes) mb.clear();
      if (fabric_->injector) fabric_->injector->drop_pending();
    }
    // A handle that was initiated but never waited leaves schedule messages
    // parked in the mailboxes, corrupting the next run. Surface it as a
    // named error (which op, which rank) rather than a later generic
    // deadlock.
    const auto leaked = v->outstanding_nonblocking();
    if (!leaked.empty()) {
      std::ostringstream os;
      os << "leaked CollectiveHandle: " << leaked.size()
         << " nonblocking operation(s) were initiated but never completed "
            "(wait() or test()-to-done every handle before it is destroyed):";
      for (const auto& l : leaked) os << "\n  " << l;
      throw ValidationError(os.str());
    }
  }
}

RecoveryReport World::run_restartable(const std::function<void(Comm&)>& fn,
                                      int max_restarts) {
  MBD_CHECK(max_restarts >= 0);
  RecoveryReport rep;
  for (int attempt = 0;; ++attempt) {
    try {
      run(fn);
      if (fabric_->injector) rep.events = fabric_->injector->events();
      return rep;
    } catch (const RankFailure& e) {
      if (attempt >= max_restarts) throw;
      ++rep.restarts;
      std::ostringstream os;
      os << "attempt " << attempt << " failed (" << e.what()
         << "); restarting as epoch " << attempt + 1;
      rep.log.push_back(os.str());
      rebuild_fabric(attempt + 1);
    }
  }
}

void World::rebuild_fabric(int next_epoch) {
  // Tear down the poisoned fabric and rebuild with the same configuration.
  // The transport and injector are shared across fabrics: the transport
  // advances its epoch first (frames of the failed epoch become stale and
  // drop; early frames from already-restarted peers buffer and flush into
  // the fresh mailboxes during attach), and the injector's event log is
  // cumulative while its trigger state re-arms for the next epoch.
  fabric_->transport->begin_epoch(next_epoch);
  auto fresh = std::make_shared<detail::Fabric>(size_, fabric_->transport);
  if (fabric_->validator) {
    fresh->validator = std::make_unique<Validator>(size_);
    fresh->validator->adopt_settings(*fabric_->validator);
  }
  if (fabric_->trace) {
    auto t = std::make_unique<Trace>();
    t->ranks.resize(static_cast<std::size_t>(size_));
    fresh->trace = std::move(t);
  }
  if (fabric_->recorder) {
    fresh->recorder = std::make_unique<ScheduleRecording>(size_);
  }
  fresh->injector = fabric_->injector;
  fabric_ = std::move(fresh);
  if (fabric_->injector) fabric_->injector->begin_epoch(next_epoch);
}

void World::install_faults(FaultPlan plan, FaultConfig cfg) {
  MBD_CHECK_MSG(!fabric_->poisoned.load(std::memory_order_acquire),
                "cannot install faults on a poisoned World");
  fabric_->injector =
      std::make_shared<FaultInjector>(std::move(plan), cfg, size_);
}

FaultInjector* World::fault_injector() const {
  return fabric_->injector.get();
}

StatsSnapshot World::stats() const { return fabric_->counters.snapshot(); }

void World::reset_stats() { fabric_->counters.reset(); }

void World::enable_tracing() {
  if (fabric_->trace) return;
  auto t = std::make_unique<Trace>();
  t->ranks.resize(static_cast<std::size_t>(size_));
  fabric_->trace = std::move(t);
}

const Trace& World::trace() const {
  static const Trace kEmpty{};
  return fabric_->trace ? *fabric_->trace : kEmpty;
}

void World::reset_trace() {
  if (!fabric_->trace) return;
  for (auto& r : fabric_->trace->ranks) r.clear();
}

void World::enable_schedule_recording() {
  if (fabric_->recorder) return;
  fabric_->recorder = std::make_unique<ScheduleRecording>(size_);
}

const ScheduleRecording& World::schedule_recording() const {
  static const ScheduleRecording kEmpty{};
  return fabric_->recorder ? *fabric_->recorder : kEmpty;
}

void World::reset_schedule_recording() {
  if (!fabric_->recorder) return;
  for (auto& r : fabric_->recorder->ranks) {
    r.events.clear();
    r.next_nb_token = 1;
  }
}

void World::enable_validation() {
  if (fabric_->validator) return;
  fabric_->validator = std::make_unique<Validator>(size_);
  configure_validator(*fabric_->validator);
}

void World::disable_validation() { fabric_->validator.reset(); }

bool World::validation_enabled() const {
  return fabric_->validator != nullptr;
}

void World::set_validation_timeout(std::chrono::milliseconds t) {
  enable_validation();
  fabric_->validator->set_timeout(t);
}

std::chrono::milliseconds World::validation_timeout() const {
  return fabric_->validator ? fabric_->validator->timeout()
                            : std::chrono::milliseconds{0};
}

}  // namespace mbd::comm
