// Deterministic fault injection for the mbd::comm runtime.
//
// A FaultPlan is a list of FaultActions pinned to exact (rank, op-sequence)
// points: every send and every blocking receive a rank performs increments
// its transport op counter, and an action fires when the counter reaches the
// action's op_index in the action's epoch (attempt number under
// World::run_restartable). Nothing is keyed on wall-clock time, so one seed
// replays the same failure step, retry count, and event log on every run —
// that is what makes recovery testable bitwise.
//
// Five fault kinds:
//  * CrashRank — the rank throws RankFailure at the op, poisoning the fabric
//    exactly like any other rank failure. World::run_restartable catches it.
//  * DropMessage — the rank's next send is swallowed instead of delivered.
//    The receiver's blocking pop recovers it via the timed-retry path: every
//    retry_interval it asks the injector to retransmit anything swallowed or
//    still deferred for it (the mailbox deposit doubles as the ack — a
//    delivered message is never retransmitted again).
//  * DuplicateDelivery — the send is deposited twice; the mailbox drops the
//    duplicate by per-channel sequence number.
//  * DelayDelivery — the send is parked until the sender's op counter
//    advances by defer_ops (or a receiver-side retry flushes it first).
//  * SlowRank — every op in [op_index, op_index + slow_ops) sleeps for
//    `delay`. Perturbs thread interleaving without changing any result.
//
// Reliability substrate: when an injector is installed every message carries
// a per-channel (context, src, dst, tag) sequence number, the destination
// mailbox delivers strictly in sequence order, and duplicates are dropped on
// deposit. Drops and delays therefore never reorder what a receiver observes
// — payload streams stay FIFO per channel exactly as without faults.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "mbd/comm/mailbox.hpp"
#include "mbd/support/check.hpp"

namespace mbd::comm {

class Transport;

/// Thrown on the crashing rank by FaultKind::CrashRank; the one exception
/// class World::run_restartable treats as recoverable. Carries the global
/// rank that died so spare promotion knows which slot to refill (-1 when the
/// failing rank could not be attributed).
class RankFailure : public ::mbd::Error {
 public:
  using Error::Error;
  RankFailure(const std::string& what, int failed_rank)
      : Error(what), failed_rank_(failed_rank) {}

  int failed_rank() const { return failed_rank_; }

 private:
  int failed_rank_ = -1;
};

enum class FaultKind : int {
  DelayDelivery = 0,  ///< park the next send for defer_ops further ops
  DropMessage,        ///< swallow the next send (timed retry recovers it)
  DuplicateDelivery,  ///< deposit the next send twice (seq dedup drops one)
  CrashRank,          ///< throw RankFailure at the op
  SlowRank,           ///< sleep `delay` per op for slow_ops ops
};

std::string_view fault_kind_name(FaultKind k);

/// One injected fault, pinned to a (rank, op-sequence, epoch) point.
struct FaultAction {
  FaultKind kind = FaultKind::CrashRank;
  int rank = 0;                ///< global rank the fault applies to
  std::uint64_t op_index = 1;  ///< 1-based transport op that triggers it
  int epoch = 0;               ///< restart attempt the action is armed in
  /// SlowRank: per-op sleep. Pure perturbation — never affects results.
  std::chrono::milliseconds delay{1};
  std::uint64_t defer_ops = 4;  ///< DelayDelivery: release after this many ops
  std::uint64_t slow_ops = 8;   ///< SlowRank: how many ops are slowed

  std::string describe() const;
};

/// Knobs for FaultPlan::random.
struct FaultPlanOptions {
  int crashes = 1;     ///< one CrashRank per epoch 0..crashes-1
  int drops = 0;       ///< DropMessage actions (epoch 0)
  int duplicates = 0;  ///< DuplicateDelivery actions (epoch 0)
  int delays = 0;      ///< DelayDelivery actions (epoch 0)
  /// Crash op index range (inclusive); keep min high enough that the
  /// transport ops of the send-faults (placed strictly before the first
  /// crash on the same rank) exist.
  std::uint64_t min_op = 8;
  std::uint64_t max_op = 48;
};

/// A replayable schedule of fault actions.
struct FaultPlan {
  std::uint64_t seed = 0;  ///< provenance only (0 = hand-written)
  std::vector<FaultAction> actions;

  bool empty() const { return actions.empty(); }

  /// Seeded plan: deterministic function of (seed, world_size, opts). The
  /// epoch-0 send-faults are co-located on the epoch-0 crash rank at earlier
  /// op indices, so every action deterministically fires before the crash
  /// tears the run down.
  static FaultPlan random(std::uint64_t seed, int world_size,
                          const FaultPlanOptions& opts = {});

  std::string describe() const;
};

/// One fired fault (or recovery-path retransmission), for the structured
/// event log.
struct FaultEvent {
  int epoch = 0;
  int rank = -1;
  std::uint64_t op_index = 0;
  std::string kind;    ///< "crash", "drop", "duplicate", "delay", "slow",
                       ///< "retransmit"
  std::string detail;  ///< human-readable specifics

  /// "[epoch 0] rank 2 @op 17: drop — ..." (deterministic across runs).
  std::string describe() const;
};

/// Injector configuration independent of the plan.
struct FaultConfig {
  /// Receiver-side retransmission period for a blocking recv with no match:
  /// how often the injector is asked to flush swallowed/deferred messages
  /// destined for the receiver. Wall-clock only decides *when* the retry
  /// fires, never *what* is retransmitted, so results stay deterministic.
  std::chrono::milliseconds retry_interval{25};
};

/// The runtime side of a FaultPlan: owned by the Fabric (installed via
/// World::install_faults), consulted by Comm on every send and blocking
/// recv. Thread-safe; per-rank trigger state is only touched by its own rank
/// thread, the swallowed/deferred buffers and the event log are mutex
/// protected.
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, FaultConfig cfg, int world_size);

  // --- transport hooks (called on rank threads by Comm) ------------------
  /// Count one transport op on `rank`; fire crash/slow actions and release
  /// due deferred messages. Throws RankFailure for a crash action.
  void on_op(int rank, Transport& transport);
  /// Reserve `n` consecutive op identities on `rank` at a deterministic
  /// initiation point (a nonblocking collective reserves one op per ring
  /// round when it is posted). Returns the first reserved index. Drain-time
  /// polling then fires faults against these fixed identities via
  /// on_reserved_op/deliver(op_id), so how many test() polls a round takes
  /// never shifts which op a fault lands on.
  std::uint64_t reserve_ops(int rank, std::uint64_t n);
  /// Fire point actions (crash / slow) pinned exactly to reserved op `op_id`
  /// on `rank`. Unlike on_op this does not advance the op counter and
  /// requires an exact op_index match — reserved identities are stable, so a
  /// >= sweep is unnecessary and would double-fire against blocking ops.
  void on_reserved_op(int rank, std::uint64_t op_id, Transport& transport);
  /// Next per-channel sequence number for a (context, src, dst, tag) send.
  std::uint64_t assign_seq(std::uint64_t context, int src, int dst, int tag);
  /// Deliver `msg` from `src` to `dst`, applying any armed send-fault
  /// (drop / duplicate / delay) whose op point has been reached. Delivery
  /// goes through the transport, so over a socket backend a duplicate is two
  /// wire frames and a drop swallows the frame before it is ever written —
  /// the receiver's mailbox seq dedup and timed-retry recovery are identical
  /// either way.
  void deliver(Transport& transport, int src, int dst, Message msg);
  /// Same, but for a send carrying a reserved op identity: a send-fault
  /// fires only if its op_index matches `op_id` exactly (armed queue is
  /// scanned, not popped front-first).
  void deliver(Transport& transport, int src, int dst, Message msg,
               std::uint64_t op_id);
  /// Receiver-side retry: flush every swallowed or deferred message destined
  /// for `dst` back through the transport. The deposit is the ack — flushed
  /// messages leave the injector for good. Called from the Mailbox pop retry
  /// hook (local receiver) and, off-process, on a peer's RetryRequest frame.
  void retry_deliver(Transport& transport, int dst);
  std::chrono::milliseconds retry_interval() const {
    return cfg_.retry_interval;
  }

  // --- lifecycle (no rank threads running) -------------------------------
  /// Re-arm for restart attempt `epoch`: reset op counters and sequence
  /// numbers (the fabric's mailboxes are fresh), drop undelivered buffers,
  /// arm exactly the plan actions with action.epoch == epoch. The event log
  /// is cumulative across epochs.
  void begin_epoch(int epoch);
  int epoch() const { return epoch_.load(std::memory_order_relaxed); }
  /// Drop swallowed/deferred messages (used after a run whose pending
  /// nonblocking ops were cancelled mid-unwind).
  void drop_pending();

  // --- observability ------------------------------------------------------
  /// Every fired fault and retransmission so far, in deterministic
  /// (epoch, rank, op, kind) order.
  std::vector<FaultEvent> events() const;
  /// Transport ops rank has performed in the current epoch.
  std::uint64_t op_count(int rank) const;
  /// Messages re-deposited by retry_deliver over the injector's lifetime.
  std::uint64_t retransmit_count() const {
    return retransmits_.load(std::memory_order_relaxed);
  }
  /// Payload bytes re-deposited by retry_deliver. Kept apart from
  /// StatsCounters on purpose: a collective's logical volume is counted
  /// exactly once at send time, and retransmissions must never inflate it.
  std::uint64_t retransmit_bytes() const {
    return retransmit_bytes_.load(std::memory_order_relaxed);
  }
  /// Appended to the watchdog's deadlock report so a stall caused by an
  /// injected fault names its cause.
  std::string attribution_note() const;
  const FaultPlan& plan() const { return plan_; }

 private:
  struct Deferred {
    std::uint64_t release_at = 0;  ///< sender op count that releases it
    int dst = -1;
    Message msg;
  };
  struct Armed {
    FaultAction action;
    bool fired = false;
  };
  // Per-rank trigger state: `ops` is written by the owning rank thread and
  // read by diagnostics; the action queues are touched only by the owning
  // rank thread between begin_epoch calls.
  struct PerRank {
    std::atomic<std::uint64_t> ops{0};
    std::vector<Armed> point_actions;   // CrashRank / SlowRank, by op_index
    std::deque<FaultAction> send_actions;  // Drop / Duplicate / Delay
  };

  void record(FaultEvent ev);
  void release_due(int rank, std::uint64_t op, Transport& transport);
  void apply_send_fault(const FaultAction& a, Transport& transport, int src,
                        int dst, Message msg, std::uint64_t op, bool nb_round);

  FaultPlan plan_;
  FaultConfig cfg_;
  int world_size_;
  std::vector<std::unique_ptr<PerRank>> ranks_;
  std::atomic<int> epoch_{0};
  // A fired crash disarms every other action: the fabric is being poisoned
  // and whatever peers still do is teardown, not the experiment.
  std::atomic<bool> disarmed_{false};
  std::atomic<std::uint64_t> retransmits_{0};
  std::atomic<std::uint64_t> retransmit_bytes_{0};

  mutable std::mutex buf_mu_;  // guards swallowed_ + deferred_
  std::vector<std::vector<Message>> swallowed_;  // by destination rank
  std::vector<Deferred> deferred_;

  mutable std::mutex ev_mu_;
  std::vector<FaultEvent> events_;

  mutable std::mutex seq_mu_;
  std::map<std::tuple<std::uint64_t, int, int, int>, std::uint64_t> seq_;
};

}  // namespace mbd::comm
