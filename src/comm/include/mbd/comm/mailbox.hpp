// Per-rank mailboxes: the transport under the mbd::comm runtime.
//
// A send deposits a copy of the payload into the destination rank's mailbox
// (buffered semantics, so collective algorithms written as send-then-receive
// never deadlock). Messages are matched on (context, source, tag) and
// delivered FIFO per matching key, mirroring MPI's non-overtaking guarantee.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace mbd::comm {

/// Envelope for one in-flight message.
struct Message {
  std::uint64_t context = 0;  ///< communicator context id
  int source = -1;            ///< global rank of sender
  int tag = 0;
  std::uint64_t trace_id = 0;  ///< pairs Send/Recv trace events (0 = untraced)
  std::vector<std::byte> payload;
};

/// Thread-safe mailbox for one rank.
class Mailbox {
 public:
  /// Deposit a message (copies happen before the call).
  void push(Message msg);

  /// Block until a message matching (context, source, tag) is available and
  /// return the earliest such message. Throws mbd::Error if the fabric is
  /// poisoned (another rank threw) while waiting.
  Message pop(std::uint64_t context, int source, int tag);

  /// Wake all waiters so they can observe a poisoned fabric.
  void poison();

  /// Number of queued messages (diagnostic only).
  std::size_t pending() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  bool poisoned_ = false;
};

}  // namespace mbd::comm
