// Per-rank mailboxes: the transport under the mbd::comm runtime.
//
// A send deposits a copy of the payload into the destination rank's mailbox
// (buffered semantics, so collective algorithms written as send-then-receive
// never deadlock). Messages are matched on (context, source, tag) and
// delivered FIFO per matching key, mirroring MPI's non-overtaking guarantee.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <tuple>
#include <vector>

#include "mbd/support/check.hpp"

namespace mbd::comm {

/// Thrown by blocked receives (and attempted sends) after another rank
/// poisoned the fabric. Distinguished from primary failures so World::run
/// can rethrow the rank's original exception rather than one of the
/// secondary wakeup errors it caused.
class PoisonedError : public ::mbd::Error {
 public:
  using Error::Error;
};

/// Envelope for one in-flight message.
struct Message {
  std::uint64_t context = 0;  ///< communicator context id
  int source = -1;            ///< global rank of sender
  int tag = 0;
  std::uint64_t trace_id = 0;  ///< pairs Send/Recv trace events (0 = untraced)
  /// Per-channel (context, source, tag) sequence number, 1-based; 0 marks an
  /// unsequenced message (no fault injector installed). Sequenced messages
  /// are delivered strictly in order and duplicates are dropped on deposit —
  /// the reliability substrate under injected drops and duplications.
  std::uint64_t seq = 0;
  std::vector<std::byte> payload;
};

/// Watchdog for a blocking pop: if no matching message arrives within
/// `timeout`, the pop throws an mbd::Error carrying `report()` — used by the
/// collective validator to turn silent deadlocks into diagnostics. When
/// `on_retry` is set, a pop still unmatched after each `retry_interval`
/// invokes it (with the mailbox unlocked) — the fault injector's timed
/// retransmission path for dropped deliveries.
struct PopWatch {
  std::chrono::milliseconds timeout{0};
  std::function<std::string()> report;
  std::chrono::milliseconds retry_interval{0};  ///< <= 0 disables retries
  std::function<void()> on_retry;
};

/// Thread-safe mailbox for one rank.
class Mailbox {
 public:
  /// Deposit a message (copies happen before the call).
  void push(Message msg);

  /// Block until a message matching (context, source, tag) is available and
  /// return the earliest such message. Throws PoisonedError if the fabric is
  /// poisoned (another rank threw) while waiting. If `watch` is non-null and
  /// the wait exceeds watch->timeout, throws mbd::Error with watch->report().
  Message pop(std::uint64_t context, int source, int tag,
              const PopWatch* watch = nullptr);

  /// Non-blocking pop: if a message matching (context, source, tag) is
  /// queued, move the earliest one into `out` and return true. Returns false
  /// when no match is available; throws PoisonedError if the fabric is
  /// poisoned and no match is queued. Used by CollectiveHandle::test().
  bool try_pop(std::uint64_t context, int source, int tag, Message& out);

  /// Wake all waiters so they can observe a poisoned fabric.
  void poison();

  /// Number of queued messages (diagnostic only).
  std::size_t pending() const;

  /// Drop every queued message. Sequence cursors fast-forward past the
  /// dropped messages so a later run reusing the same (context, source,
  /// tag) channels is not stuck waiting for sequence numbers that will
  /// never be sent again. Only call between World::run calls.
  void clear();

  /// Full reset for in-place fabric repair (spare promotion): drop every
  /// queued message, forget all sequence cursors, and un-poison. The next
  /// epoch restarts per-channel sequence numbering from 1, so cursors must
  /// start fresh rather than fast-forward. Only call between World::run
  /// calls with no rank threads blocked in pop().
  void reset();

 private:
  using ChannelKey = std::tuple<std::uint64_t, int, int>;

  // Sequenced messages deliver in order: a message matches only when its
  // seq is the channel's next expected. Plain (seq == 0) messages match
  // unconditionally. Callers hold mu_.
  bool matches(const Message& m, std::uint64_t context, int source,
               int tag) const;
  // Record consumption of `m` (advances the channel cursor).
  void consumed(const Message& m);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  // Per channel: next expected (not yet consumed) sequence number.
  std::map<ChannelKey, std::uint64_t> next_seq_;
  bool poisoned_ = false;
};

}  // namespace mbd::comm
