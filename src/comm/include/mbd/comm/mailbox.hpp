// Per-rank mailboxes: the transport under the mbd::comm runtime.
//
// A send deposits a copy of the payload into the destination rank's mailbox
// (buffered semantics, so collective algorithms written as send-then-receive
// never deadlock). Messages are matched on (context, source, tag) and
// delivered FIFO per matching key, mirroring MPI's non-overtaking guarantee.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "mbd/support/check.hpp"

namespace mbd::comm {

/// Thrown by blocked receives (and attempted sends) after another rank
/// poisoned the fabric. Distinguished from primary failures so World::run
/// can rethrow the rank's original exception rather than one of the
/// secondary wakeup errors it caused.
class PoisonedError : public ::mbd::Error {
 public:
  using Error::Error;
};

/// Envelope for one in-flight message.
struct Message {
  std::uint64_t context = 0;  ///< communicator context id
  int source = -1;            ///< global rank of sender
  int tag = 0;
  std::uint64_t trace_id = 0;  ///< pairs Send/Recv trace events (0 = untraced)
  std::vector<std::byte> payload;
};

/// Watchdog for a blocking pop: if no matching message arrives within
/// `timeout`, the pop throws an mbd::Error carrying `report()` — used by the
/// collective validator to turn silent deadlocks into diagnostics.
struct PopWatch {
  std::chrono::milliseconds timeout{0};
  std::function<std::string()> report;
};

/// Thread-safe mailbox for one rank.
class Mailbox {
 public:
  /// Deposit a message (copies happen before the call).
  void push(Message msg);

  /// Block until a message matching (context, source, tag) is available and
  /// return the earliest such message. Throws PoisonedError if the fabric is
  /// poisoned (another rank threw) while waiting. If `watch` is non-null and
  /// the wait exceeds watch->timeout, throws mbd::Error with watch->report().
  Message pop(std::uint64_t context, int source, int tag,
              const PopWatch* watch = nullptr);

  /// Non-blocking pop: if a message matching (context, source, tag) is
  /// queued, move the earliest one into `out` and return true. Returns false
  /// when no match is available; throws PoisonedError if the fabric is
  /// poisoned and no match is queued. Used by CollectiveHandle::test().
  bool try_pop(std::uint64_t context, int source, int tag, Message& out);

  /// Wake all waiters so they can observe a poisoned fabric.
  void poison();

  /// Number of queued messages (diagnostic only).
  std::size_t pending() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  bool poisoned_ = false;
};

}  // namespace mbd::comm
