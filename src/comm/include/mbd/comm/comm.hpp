// Communicator: rank-addressed message passing plus the collective
// algorithms the paper's cost model assumes.
//
// The collectives are implemented with the textbook algorithms cited by the
// paper (Thakur, Rabenseifner & Gropp 2005):
//   * all-gather  — Bruck (⌈log P⌉ rounds) and ring (P-1 rounds)
//   * all-reduce  — ring (reduce-scatter + all-gather) and recursive doubling
//   * reduce-scatter — ring
//   * broadcast / reduce — binomial tree
//   * barrier     — dissemination
// so the instrumented byte counts match the α–β model terms exactly:
// per-process all-gather volume = (P-1)/P · n, ring all-reduce = 2(P-1)/P · n.
#pragma once

#include <cstring>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <typeinfo>
#include <vector>

#include "mbd/comm/fabric.hpp"
#include "mbd/comm/nonblocking.hpp"
#include "mbd/comm/validator.hpp"
#include "mbd/obs/profiler.hpp"
#include "mbd/support/check.hpp"

namespace mbd::comm {

namespace detail {
struct NbAccess;
}

/// Algorithm selection for all-gather.
enum class AllGatherAlgo { Bruck, Ring };
/// Algorithm selection for all-reduce.
/// Ring and Rabenseifner move 2(P−1)/P·n words per process (bandwidth
/// optimal); RecursiveDoubling moves n·⌈log₂P⌉ (latency optimal for small n).
enum class AllReduceAlgo { Ring, RecursiveDoubling, Rabenseifner };

/// A communicator over a subset of a World's ranks. Cheap to copy.
///
/// All collective members must be called by every rank of the communicator
/// (standard MPI semantics). Point-to-point source/destination arguments are
/// ranks *within this communicator*.
class Comm {
 public:
  Comm(std::shared_ptr<detail::Fabric> fabric, std::uint64_t context,
       std::shared_ptr<const std::vector<int>> members, int rank);

  int rank() const { return rank_; }
  int size() const { return static_cast<int>(members_->size()); }

  /// --- point to point -----------------------------------------------------

  /// Send `data` to communicator rank `dst` with `tag`. Buffered: returns as
  /// soon as the payload is deposited in the destination mailbox.
  template <typename T>
  void send(int dst, std::span<const T> data, int tag = 0) {
    send_bytes(dst, as_bytes_span(data), tag, Coll::PointToPoint);
  }
  /// Deduction helper: accept a mutable span without an explicit cast.
  template <typename T>
    requires(!std::is_const_v<T>)
  void send(int dst, std::span<T> data, int tag = 0) {
    send(dst, std::span<const T>(data), tag);
  }

  /// Receive a message from communicator rank `src` with `tag`; blocks.
  template <typename T>
  std::vector<T> recv(int src, int tag = 0) {
    return from_bytes<T>(recv_bytes(src, tag));
  }

  /// Simultaneous exchange with (possibly different) peers; deadlock-free by
  /// buffered-send construction. Used for halo exchange.
  template <typename T>
  std::vector<T> sendrecv(int dst, std::span<const T> send_data, int src,
                          int tag = 0) {
    obs::ScopedSpan obs_span(obs::SpanKind::CollWait, "sendrecv");
    obs_span.set_args(send_data.size() * sizeof(T), 0);
    send_bytes(dst, as_bytes_span(send_data), tag, Coll::PointToPoint);
    return from_bytes<T>(recv_bytes(src, tag));
  }

  /// --- nonblocking operations ---------------------------------------------
  ///
  /// Each i* call deposits its first round of messages and returns a
  /// CollectiveHandle; overlap compute with the operation and then wait().
  /// The spans/pointers passed in must stay alive and unmodified (except by
  /// the operation itself) until the handle reports done(). Nonblocking
  /// collectives must be issued through the same Comm object on every rank
  /// and in the same program order (their private tag blocks are derived
  /// from a per-communicator issue counter). See mbd/comm/nonblocking.hpp
  /// for progress and validator semantics.

  /// Nonblocking ring all-reduce (elementwise, in place). Identical message
  /// schedule, byte counts, and reduction order as the blocking ring — the
  /// completed result is bitwise equal to allreduce(..., AllReduceAlgo::Ring).
  template <typename T, typename Op = std::plus<T>>
  CollectiveHandle iallreduce(std::span<T> data, Op op = {});

  /// Nonblocking ring all-gather of equal-size blocks into caller-owned
  /// `out` (size local.size() * P, rank-ordered). This rank's block is
  /// copied in at initiation.
  template <typename T>
  CollectiveHandle iallgather(std::span<const T> local, std::span<T> out);

  /// Nonblocking ring all-gather of VARIABLE-size blocks; `*out` receives
  /// the rank-ordered concatenation at completion.
  template <typename T>
  CollectiveHandle iallgatherv(std::span<const T> local, std::vector<T>* out);

  /// Nonblocking exchange with (possibly different) peers: `send_data` is
  /// deposited to `dst` immediately; the handle completes the receive from
  /// `src` into `*recv_out`. Matching mirrors sendrecv() (user tag space),
  /// so blocking sends pair with it fine. Used for halo exchange overlapped
  /// with interior compute.
  template <typename T>
  CollectiveHandle isendrecv(int dst, std::span<const T> send_data, int src,
                             std::vector<T>* recv_out, int tag = 0);

  /// --- collectives ---------------------------------------------------------

  /// Dissemination barrier: ⌈log2 P⌉ rounds.
  void barrier();

  /// Binomial-tree broadcast of root's `data` (all ranks pass equal sizes).
  template <typename T>
  void broadcast(std::span<T> data, int root);

  /// Binomial-tree reduction into `data` on root (other ranks' buffers are
  /// left partially combined — treat them as scratch). Op must be
  /// commutative and associative.
  template <typename T, typename Op = std::plus<T>>
  void reduce(std::span<T> data, int root, Op op = {});

  /// All-gather of equal-size local blocks; result is ordered by rank.
  template <typename T>
  std::vector<T> allgather(std::span<const T> local,
                           AllGatherAlgo algo = AllGatherAlgo::Bruck);
  template <typename T>
    requires(!std::is_const_v<T>)
  std::vector<T> allgather(std::span<T> local,
                           AllGatherAlgo algo = AllGatherAlgo::Bruck) {
    return allgather(std::span<const T>(local), algo);
  }

  /// All-gather of VARIABLE-size blocks (ring algorithm, P−1 rounds); the
  /// result is the rank-ordered concatenation. Unlike allgather(), ranks may
  /// pass different local sizes — used by the partitioned trainers when a
  /// dimension does not divide evenly.
  template <typename T>
  std::vector<T> allgatherv(std::span<const T> local);
  template <typename T>
    requires(!std::is_const_v<T>)
  std::vector<T> allgatherv(std::span<T> local) {
    return allgatherv(std::span<const T>(local));
  }

  /// All-reduce (elementwise, in place).
  template <typename T, typename Op = std::plus<T>>
  void allreduce(std::span<T> data, Op op = {},
                 AllReduceAlgo algo = AllReduceAlgo::Ring);

  /// Ring reduce-scatter: returns this rank's reduced block (block r of the
  /// canonical P-way partition of [0, n)).
  template <typename T, typename Op = std::plus<T>>
  std::vector<T> reduce_scatter(std::span<const T> data, Op op = {});

  /// Linear gather to root; result (root only) is rank-ordered concatenation.
  template <typename T>
  std::vector<T> gather(std::span<const T> local, int root);
  template <typename T>
    requires(!std::is_const_v<T>)
  std::vector<T> gather(std::span<T> local, int root) {
    return gather(std::span<const T>(local), root);
  }

  /// Linear scatter from root of equal `chunk`-sized pieces.
  template <typename T>
  std::vector<T> scatter(std::span<const T> all, int root, std::size_t chunk);

  /// All-to-all of equal `chunk`-sized pieces: `data` holds P chunks, chunk
  /// r destined for rank r; the result holds chunk s from each rank s, in
  /// rank order. Ring-offset pairwise exchange, P−1 rounds; traffic is
  /// recorded under the Gather class (no strategy in this project uses
  /// all-to-all, so it never pollutes the validated classes).
  template <typename T>
  std::vector<T> alltoall(std::span<const T> data, std::size_t chunk);
  template <typename T>
    requires(!std::is_const_v<T>)
  std::vector<T> alltoall(std::span<T> data, std::size_t chunk) {
    return alltoall(std::span<const T>(data), chunk);
  }

  /// Collective split, MPI_Comm_split semantics: ranks with equal `color`
  /// form a new communicator, ordered by (key, parent rank).
  Comm split(int color, int key);

  /// If the World is recording schedules, mark the end of engine iteration
  /// `iteration` in this rank's log (no-op otherwise). The analyzer uses
  /// these markers to carve per-iteration traffic windows and to bound
  /// nonblocking-handle lifetimes to their epoch.
  void mark_engine_step(std::size_t iteration);

  /// If the World is tracing, log `seconds` of modeled compute on this rank
  /// at the current point in its event stream (no-op otherwise). Replay uses
  /// these annotations to interleave compute with communication.
  void annotate_compute(double seconds);

  /// Canonical block partition of n elements over P ranks: element range of
  /// block `b` is [block_lo(n,P,b), block_lo(n,P,b+1)).
  static std::size_t block_lo(std::size_t n, int p, int b) {
    return (n * static_cast<std::size_t>(b)) / static_cast<std::size_t>(p);
  }

 private:
  template <typename T>
  static std::span<const std::byte> as_bytes_span(std::span<const T> s) {
    return {reinterpret_cast<const std::byte*>(s.data()), s.size_bytes()};
  }
  template <typename T>
  static std::vector<T> from_bytes(std::vector<std::byte> b) {
    MBD_CHECK_EQ(b.size() % sizeof(T), 0u);
    std::vector<T> out(b.size() / sizeof(T));
    // Zero-length payloads are legal and their data() may be null; memcpy's
    // arguments are declared nonnull even for n == 0 (UBSan enforces this).
    if (!b.empty()) std::memcpy(out.data(), b.data(), b.size());
    return out;
  }

  // `reserved_op` != 0 marks a nonblocking ring-round send carrying an op
  // identity reserved at initiation (see reserve_nb_ops): the injector fires
  // faults against that exact identity instead of the live op counter, so
  // drain-time polling cannot shift which op a fault lands on.
  void send_bytes(int dst, std::span<const std::byte> data, int tag, Coll c,
                  std::uint64_t reserved_op = 0);
  // `counted` == false skips the injector op count: nonblocking Block
  // receives are uncounted because whether a round completes via a test()
  // poll (never counted) or a wait() blocking recv is timing-dependent.
  std::vector<std::byte> recv_bytes(int src, int tag, bool counted = true);
  // Nonblocking variant: false (and `out` untouched) when no matching
  // message has been delivered yet.
  bool try_recv_bytes(int src, int tag, std::vector<std::byte>& out);
  // Reserve `rounds` consecutive injector op identities for a nonblocking
  // collective at initiation. Initiation is program-ordered across ranks, so
  // the identities are deterministic no matter how the op is later drained.
  // Returns the first identity, or 0 when no injector is installed.
  std::uint64_t reserve_nb_ops(std::uint64_t rounds);
  int global_rank(int comm_rank) const;

  // Append a Recv event to this rank's schedule log (no-op when the World
  // is not recording). Shared by the blocking and nonblocking receive paths.
  void record_recv(int gme, int gsrc, int tag, std::size_t bytes);

  // Registers `op` with the validator (leak tracking), eagerly advances it
  // once (posting round-0 sends), and wraps it in a handle. `op_name` must
  // point at a string literal: the profiler keeps it for the lifetime of the
  // timeline (CollPost span label + completion-span label via obs_what).
  CollectiveHandle make_handle(std::unique_ptr<detail::PendingOp> op,
                               const char* op_name, std::string what);

  // Registers a collective entry with the World's validator (no-op when
  // validation is off). Throws ValidationError on a cross-rank mismatch.
  void validate_entry(const CollectiveDesc& desc);

  // Internal tags are offset per collective so user p2p traffic on the same
  // communicator can never be confused with collective traffic.
  static constexpr int kInternalTagBase = 1 << 20;
  static int internal_tag(Coll c, int step) {
    return kInternalTagBase + (static_cast<int>(c) << 12) + step;
  }

  // Nonblocking collectives draw a private tag block per operation instance
  // so several may be outstanding on one communicator without their round
  // messages cross-matching (the mailbox matches on (context, source, tag)
  // only). The issue counter is consistent across ranks because standard
  // collective semantics require identical program order; its wraparound is
  // safe because kNbSeqWrap operations can never be simultaneously in
  // flight. The block sits above both the user tag space and
  // kInternalTagBase.
  static constexpr int kNbTagBase = 1 << 24;
  static constexpr int kNbTagStride = 1 << 12;  // max rounds per op
  static constexpr int kNbSeqWrap = 1 << 14;
  int nb_tag_block() {
    const int seq = nb_seq_;
    nb_seq_ = (nb_seq_ + 1) % kNbSeqWrap;
    return kNbTagBase + seq * kNbTagStride;
  }

  template <typename T, typename Op>
  void allreduce_ring(std::span<T> data, Op op);
  template <typename T, typename Op>
  void allreduce_recursive_doubling(std::span<T> data, Op op);
  template <typename T, typename Op>
  void allreduce_rabenseifner(std::span<T> data, Op op);
  template <typename T>
  std::vector<T> allgather_bruck(std::span<const T> local);
  template <typename T>
  std::vector<T> allgather_ring(std::span<const T> local);

  // Collective-internal send/recv that records under class `c`.
  template <typename T>
  void csend(int dst, std::span<const T> data, Coll c, int step) {
    send_bytes(dst, as_bytes_span(data), internal_tag(c, step), c);
  }
  template <typename T>
  std::vector<T> crecv(int src, Coll c, int step) {
    return from_bytes<T>(recv_bytes(src, internal_tag(c, step)));
  }

  friend struct detail::NbAccess;

  std::shared_ptr<detail::Fabric> fabric_;
  std::uint64_t context_;
  std::shared_ptr<const std::vector<int>> members_;  // comm rank -> global rank
  int rank_;
  int split_seq_ = 0;  // number of splits performed (consistent across ranks)
  int nb_seq_ = 0;     // nonblocking ops issued (consistent across ranks)
};

namespace detail {

/// Byte-level transport access for the nonblocking op state machines; keeps
/// the friendship surface to one struct instead of one per op template.
struct NbAccess {
  static void send(Comm& c, int dst, std::span<const std::byte> data, int tag,
                   Coll cl, std::uint64_t op_id = 0) {
    c.send_bytes(dst, data, tag, cl, op_id);
  }
  static std::vector<std::byte> recv(Comm& c, int src, int tag) {
    // Nonblocking Block receives are uncounted: a round that completes via a
    // test() poll performs no blocking recv at all, so counting the wait()
    // path would make op indices depend on drain timing.
    return c.recv_bytes(src, tag, /*counted=*/false);
  }
  static bool try_recv(Comm& c, int src, int tag,
                       std::vector<std::byte>& out) {
    return c.try_recv_bytes(src, tag, out);
  }
  template <typename T>
  static std::span<const std::byte> bytes(std::span<const T> s) {
    return Comm::as_bytes_span(s);
  }
  template <typename T>
  static std::vector<T> typed(std::vector<std::byte> b) {
    return Comm::from_bytes<T>(std::move(b));
  }
};

}  // namespace detail

// ---------------------------------------------------------------------------
// Template implementations.
// ---------------------------------------------------------------------------

template <typename T>
void Comm::broadcast(std::span<T> data, int root) {
  const int p = size();
  MBD_CHECK(root >= 0 && root < p);
  obs::ScopedSpan obs_span(obs::SpanKind::CollWait, "broadcast");
  obs_span.set_args(data.size() * sizeof(T), 0);
  validate_entry({.kind = OpKind::Broadcast,
                  .count = data.size(),
                  .elem_size = sizeof(T),
                  .elem_type = typeid(T).name(),
                  .root = root});
  if (p == 1) return;
  const int vr = (rank_ - root + p) % p;
  int mask = 1;
  while (mask < p) {
    if (vr & mask) {
      auto in = crecv<T>((vr - mask + root) % p, Coll::Broadcast, 0);
      MBD_CHECK_EQ(in.size(), data.size());
      std::copy(in.begin(), in.end(), data.begin());
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vr + mask < p) {
      csend<T>((vr + mask + root) % p, std::span<const T>(data), Coll::Broadcast, 0);
    }
    mask >>= 1;
  }
}

template <typename T, typename Op>
void Comm::reduce(std::span<T> data, int root, Op op) {
  const int p = size();
  MBD_CHECK(root >= 0 && root < p);
  obs::ScopedSpan obs_span(obs::SpanKind::CollWait, "reduce");
  obs_span.set_args(data.size() * sizeof(T), 0);
  validate_entry({.kind = OpKind::Reduce,
                  .count = data.size(),
                  .elem_size = sizeof(T),
                  .elem_type = typeid(T).name(),
                  .reduce_op = typeid(Op).name(),
                  .root = root});
  if (p == 1) return;
  const int vr = (rank_ - root + p) % p;
  int mask = 1;
  while (mask < p) {
    if ((vr & mask) == 0) {
      const int partner = vr | mask;
      if (partner < p) {
        auto in = crecv<T>((partner + root) % p, Coll::Reduce, 0);
        MBD_CHECK_EQ(in.size(), data.size());
        for (std::size_t i = 0; i < data.size(); ++i)
          data[i] = op(data[i], in[i]);
      }
    } else {
      csend<T>((vr - mask + root) % p, std::span<const T>(data), Coll::Reduce, 0);
      break;
    }
    mask <<= 1;
  }
}

template <typename T>
std::vector<T> Comm::allgather(std::span<const T> local, AllGatherAlgo algo) {
  obs::ScopedSpan obs_span(obs::SpanKind::CollWait, "allgather");
  obs_span.set_args(local.size() * sizeof(T), 0);
  validate_entry({.kind = OpKind::AllGather,
                  .count = local.size(),
                  .elem_size = sizeof(T),
                  .elem_type = typeid(T).name(),
                  .algo = static_cast<int>(algo)});
  switch (algo) {
    case AllGatherAlgo::Bruck: return allgather_bruck(local);
    case AllGatherAlgo::Ring: return allgather_ring(local);
  }
  MBD_CHECK(false);
  return {};
}

template <typename T>
std::vector<T> Comm::allgather_bruck(std::span<const T> local) {
  const int p = size();
  const std::size_t m = local.size();
  std::vector<T> buf(local.begin(), local.end());
  if (p == 1) return buf;
  buf.reserve(m * static_cast<std::size_t>(p));
  // After the loop, buf holds blocks of ranks (r, r+1, ..., r+p-1) mod p.
  int step = 0;
  for (int k = 1; k < p; k <<= 1, ++step) {
    const int nblocks = std::min(k, p - k);
    const int dst = (rank_ - k + p) % p;
    const int src = (rank_ + k) % p;
    csend<T>(dst,
             std::span<const T>(buf.data(),
                                static_cast<std::size_t>(nblocks) * m),
             Coll::AllGather, step);
    auto in = crecv<T>(src, Coll::AllGather, step);
    MBD_CHECK_EQ(in.size(), static_cast<std::size_t>(nblocks) * m);
    buf.insert(buf.end(), in.begin(), in.end());
  }
  MBD_CHECK_EQ(buf.size(), m * static_cast<std::size_t>(p));
  // Rotate so block i corresponds to rank i.
  std::vector<T> out(buf.size());
  for (int b = 0; b < p; ++b) {
    const int owner = (rank_ + b) % p;
    std::copy_n(buf.begin() + static_cast<std::ptrdiff_t>(b) * static_cast<std::ptrdiff_t>(m),
                m,
                out.begin() + static_cast<std::ptrdiff_t>(owner) * static_cast<std::ptrdiff_t>(m));
  }
  return out;
}

template <typename T>
std::vector<T> Comm::allgather_ring(std::span<const T> local) {
  const int p = size();
  const std::size_t m = local.size();
  std::vector<T> out(m * static_cast<std::size_t>(p));
  std::copy(local.begin(), local.end(),
            out.begin() + static_cast<std::ptrdiff_t>(rank_) * static_cast<std::ptrdiff_t>(m));
  const int right = (rank_ + 1) % p;
  const int left = (rank_ - 1 + p) % p;
  for (int s = 0; s < p - 1; ++s) {
    const int send_block = (rank_ - s + p) % p;
    const int recv_block = (rank_ - s - 1 + p) % p;
    csend<T>(right,
             std::span<const T>(out.data() + static_cast<std::size_t>(send_block) * m, m),
             Coll::AllGather, s);
    auto in = crecv<T>(left, Coll::AllGather, s);
    MBD_CHECK_EQ(in.size(), m);
    std::copy(in.begin(), in.end(),
              out.begin() + static_cast<std::ptrdiff_t>(recv_block) * static_cast<std::ptrdiff_t>(m));
  }
  return out;
}

template <typename T>
std::vector<T> Comm::alltoall(std::span<const T> data, std::size_t chunk) {
  const int p = size();
  MBD_CHECK_EQ(data.size(), chunk * static_cast<std::size_t>(p));
  obs::ScopedSpan obs_span(obs::SpanKind::CollWait, "alltoall");
  obs_span.set_args(data.size() * sizeof(T), 0);
  validate_entry({.kind = OpKind::AllToAll,
                  .count = chunk,
                  .elem_size = sizeof(T),
                  .elem_type = typeid(T).name()});
  std::vector<T> out(data.size());
  // Own chunk moves locally.
  std::copy_n(data.begin() + static_cast<std::ptrdiff_t>(
                                 static_cast<std::size_t>(rank_) * chunk),
              chunk,
              out.begin() + static_cast<std::ptrdiff_t>(
                                static_cast<std::size_t>(rank_) * chunk));
  // Ring-offset schedule, valid for any P: at step s send the chunk for
  // rank (rank+s) and receive the chunk from rank (rank−s).
  for (int s = 1; s < p; ++s) {
    const int dst = (rank_ + s) % p;
    const int src = (rank_ - s + p) % p;
    csend<T>(dst,
             data.subspan(static_cast<std::size_t>(dst) * chunk, chunk),
             Coll::Gather, s);
    auto in = crecv<T>(src, Coll::Gather, s);
    MBD_CHECK_EQ(in.size(), chunk);
    std::copy(in.begin(), in.end(),
              out.begin() + static_cast<std::ptrdiff_t>(
                                static_cast<std::size_t>(src) * chunk));
  }
  return out;
}

template <typename T>
std::vector<T> Comm::allgatherv(std::span<const T> local) {
  // Per-rank counts legitimately differ; only kind and element type match.
  obs::ScopedSpan obs_span(obs::SpanKind::CollWait, "allgatherv");
  obs_span.set_args(local.size() * sizeof(T), 0);
  validate_entry({.kind = OpKind::AllGatherV,
                  .count = CollectiveDesc::kAnyCount,
                  .elem_size = sizeof(T),
                  .elem_type = typeid(T).name()});
  const int p = size();
  std::vector<std::vector<T>> blocks(static_cast<std::size_t>(p));
  blocks[static_cast<std::size_t>(rank_)].assign(local.begin(), local.end());
  if (p > 1) {
    const int right = (rank_ + 1) % p;
    const int left = (rank_ - 1 + p) % p;
    // Pass blocks around the ring: at step s, forward the block that
    // originated at rank (rank − s) and receive the one from (rank − s − 1).
    for (int s = 0; s < p - 1; ++s) {
      const int send_origin = (rank_ - s + p) % p;
      const int recv_origin = (rank_ - s - 1 + p) % p;
      csend<T>(right,
               std::span<const T>(blocks[static_cast<std::size_t>(send_origin)]),
               Coll::AllGather, s);
      blocks[static_cast<std::size_t>(recv_origin)] =
          crecv<T>(left, Coll::AllGather, s);
    }
  }
  std::vector<T> out;
  std::size_t total = 0;
  for (const auto& b : blocks) total += b.size();
  out.reserve(total);
  for (const auto& b : blocks) out.insert(out.end(), b.begin(), b.end());
  return out;
}

template <typename T, typename Op>
void Comm::allreduce(std::span<T> data, Op op, AllReduceAlgo algo) {
  obs::ScopedSpan obs_span(obs::SpanKind::CollWait, "allreduce");
  obs_span.set_args(data.size() * sizeof(T), 0);
  validate_entry({.kind = OpKind::AllReduce,
                  .count = data.size(),
                  .elem_size = sizeof(T),
                  .elem_type = typeid(T).name(),
                  .reduce_op = typeid(Op).name(),
                  .algo = static_cast<int>(algo)});
  if (size() == 1) return;
  switch (algo) {
    case AllReduceAlgo::Ring: allreduce_ring(data, op); return;
    case AllReduceAlgo::RecursiveDoubling:
      allreduce_recursive_doubling(data, op);
      return;
    case AllReduceAlgo::Rabenseifner:
      allreduce_rabenseifner(data, op);
      return;
  }
  MBD_CHECK(false);
}

template <typename T, typename Op>
void Comm::allreduce_ring(std::span<T> data, Op op) {
  const int p = size();
  const std::size_t n = data.size();
  const int right = (rank_ + 1) % p;
  const int left = (rank_ - 1 + p) % p;
  auto block = [&](int b) {
    b = ((b % p) + p) % p;
    return std::pair{block_lo(n, p, b), block_lo(n, p, b + 1)};
  };
  // Phase 1: reduce-scatter around the ring.
  for (int s = 0; s < p - 1; ++s) {
    const auto [slo, shi] = block(rank_ - s);
    const auto [rlo, rhi] = block(rank_ - s - 1);
    csend<T>(right, std::span<const T>(data.data() + slo, shi - slo),
             Coll::AllReduce, s);
    auto in = crecv<T>(left, Coll::AllReduce, s);
    MBD_CHECK_EQ(in.size(), rhi - rlo);
    for (std::size_t i = 0; i < in.size(); ++i)
      data[rlo + i] = op(data[rlo + i], in[i]);
  }
  // Phase 2: all-gather of the reduced blocks around the ring.
  for (int s = 0; s < p - 1; ++s) {
    const auto [slo, shi] = block(rank_ + 1 - s);
    const auto [rlo, rhi] = block(rank_ - s);
    csend<T>(right, std::span<const T>(data.data() + slo, shi - slo),
             Coll::AllReduce, p + s);
    auto in = crecv<T>(left, Coll::AllReduce, p + s);
    MBD_CHECK_EQ(in.size(), rhi - rlo);
    std::copy(in.begin(), in.end(), data.begin() + static_cast<std::ptrdiff_t>(rlo));
  }
}

template <typename T, typename Op>
void Comm::allreduce_recursive_doubling(std::span<T> data, Op op) {
  const int p = size();
  int p2 = 1;
  while (p2 * 2 <= p) p2 *= 2;
  const int rem = p - p2;
  // Fold the `rem` extra ranks into the first `rem` survivors (MPICH scheme):
  // among the first 2*rem ranks, odd ranks send to the even rank below and
  // drop out of the doubling phase.
  int vr;  // virtual rank within the power-of-two group, -1 if folded out
  if (rank_ < 2 * rem) {
    if (rank_ % 2 == 1) {
      csend<T>(rank_ - 1, std::span<const T>(data), Coll::AllReduce, 100);
      vr = -1;
    } else {
      auto in = crecv<T>(rank_ + 1, Coll::AllReduce, 100);
      for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = op(data[i], in[i]);
      vr = rank_ / 2;
    }
  } else {
    vr = rank_ - rem;
  }
  if (vr >= 0) {
    for (int mask = 1, step = 0; mask < p2; mask <<= 1, ++step) {
      const int vpartner = vr ^ mask;
      const int partner = vpartner < rem ? vpartner * 2 : vpartner + rem;
      csend<T>(partner, std::span<const T>(data), Coll::AllReduce, 200 + step);
      auto in = crecv<T>(partner, Coll::AllReduce, 200 + step);
      MBD_CHECK_EQ(in.size(), data.size());
      for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = op(data[i], in[i]);
    }
  }
  // Ship the final result back to the folded-out ranks.
  if (rank_ < 2 * rem) {
    if (rank_ % 2 == 0) {
      csend<T>(rank_ + 1, std::span<const T>(data), Coll::AllReduce, 300);
    } else {
      auto in = crecv<T>(rank_ - 1, Coll::AllReduce, 300);
      std::copy(in.begin(), in.end(), data.begin());
    }
  }
}

template <typename T, typename Op>
void Comm::allreduce_rabenseifner(std::span<T> data, Op op) {
  // Rabenseifner's algorithm: recursive-halving reduce-scatter followed by a
  // recursive-doubling all-gather. Bandwidth matches the ring (2(P−1)/P·n per
  // process) with only 2⌈log₂P⌉ latency steps. Non-power-of-two counts fold
  // the extra ranks in and out as in allreduce_recursive_doubling.
  const int p = size();
  const std::size_t n = data.size();
  int p2 = 1;
  while (p2 * 2 <= p) p2 *= 2;
  const int rem = p - p2;
  int vr;
  if (rank_ < 2 * rem) {
    if (rank_ % 2 == 1) {
      csend<T>(rank_ - 1, std::span<const T>(data), Coll::AllReduce, 400);
      vr = -1;
    } else {
      auto in = crecv<T>(rank_ + 1, Coll::AllReduce, 400);
      for (std::size_t i = 0; i < n; ++i) data[i] = op(data[i], in[i]);
      vr = rank_ / 2;
    }
  } else {
    vr = rank_ - rem;
  }
  auto real_rank = [&](int v) { return v < rem ? v * 2 : v + rem; };
  auto block = [&](int b) {
    return std::pair{block_lo(n, p2, b), block_lo(n, p2, b + 1)};
  };
  if (vr >= 0) {
    // Recursive halving: shrink the owned block range [blo, bhi) toward the
    // single block vr, exchanging the complementary half with the partner.
    int blo = 0, bhi = p2, step = 0;
    for (int mask = p2 / 2; mask >= 1; mask >>= 1, ++step) {
      const int partner = vr ^ mask;
      const int mid = (blo + bhi) / 2;
      int keep_lo, keep_hi, send_lo, send_hi;
      if ((vr & mask) == 0) {
        keep_lo = blo; keep_hi = mid; send_lo = mid; send_hi = bhi;
      } else {
        keep_lo = mid; keep_hi = bhi; send_lo = blo; send_hi = mid;
      }
      const std::size_t slo = block(send_lo).first;
      const std::size_t shi = block(send_hi - 1).second;
      csend<T>(real_rank(partner),
               std::span<const T>(data.data() + slo, shi - slo),
               Coll::AllReduce, 410 + step);
      auto in = crecv<T>(real_rank(partner), Coll::AllReduce, 410 + step);
      const std::size_t klo = block(keep_lo).first;
      MBD_CHECK_EQ(in.size(), block(keep_hi - 1).second - klo);
      for (std::size_t i = 0; i < in.size(); ++i)
        data[klo + i] = op(data[klo + i], in[i]);
      blo = keep_lo;
      bhi = keep_hi;
    }
    MBD_CHECK_EQ(blo, vr);
    MBD_CHECK_EQ(bhi, vr + 1);
    // Recursive doubling all-gather: grow the owned range back to [0, p2).
    for (int mask = 1; mask < p2; mask <<= 1, ++step) {
      const int partner = vr ^ mask;
      // Current owned range: the aligned window of width `mask` around vr.
      const int own_lo = (vr / mask) * mask;
      const int own_hi = own_lo + mask;
      const int partner_lo = (partner / mask) * mask;
      const std::size_t olo = block(own_lo).first;
      const std::size_t ohi = block(own_hi - 1).second;
      csend<T>(real_rank(partner),
               std::span<const T>(data.data() + olo, ohi - olo),
               Coll::AllReduce, 430 + step);
      auto in = crecv<T>(real_rank(partner), Coll::AllReduce, 430 + step);
      const std::size_t plo = block(partner_lo).first;
      MBD_CHECK_EQ(in.size(), block(partner_lo + mask - 1).second - plo);
      std::copy(in.begin(), in.end(),
                data.begin() + static_cast<std::ptrdiff_t>(plo));
    }
  }
  if (rank_ < 2 * rem) {
    if (rank_ % 2 == 0) {
      csend<T>(rank_ + 1, std::span<const T>(data), Coll::AllReduce, 450);
    } else {
      auto in = crecv<T>(rank_ - 1, Coll::AllReduce, 450);
      std::copy(in.begin(), in.end(), data.begin());
    }
  }
}

template <typename T, typename Op>
std::vector<T> Comm::reduce_scatter(std::span<const T> data, Op op) {
  obs::ScopedSpan obs_span(obs::SpanKind::CollWait, "reduce_scatter");
  obs_span.set_args(data.size() * sizeof(T), 0);
  validate_entry({.kind = OpKind::ReduceScatter,
                  .count = data.size(),
                  .elem_size = sizeof(T),
                  .elem_type = typeid(T).name(),
                  .reduce_op = typeid(Op).name()});
  const int p = size();
  const std::size_t n = data.size();
  std::vector<T> work(data.begin(), data.end());
  const int right = (rank_ + 1) % p;
  const int left = (rank_ - 1 + p) % p;
  auto block = [&](int b) {
    b = ((b % p) + p) % p;
    return std::pair{block_lo(n, p, b), block_lo(n, p, b + 1)};
  };
  // Ring schedule offset so that after P-1 steps rank r owns the fully
  // reduced canonical block r (send block r-s-1, accumulate block r-s-2).
  for (int s = 0; s < p - 1; ++s) {
    const auto [slo, shi] = block(rank_ - s - 1);
    const auto [rlo, rhi] = block(rank_ - s - 2);
    csend<T>(right, std::span<const T>(work.data() + slo, shi - slo),
             Coll::ReduceScatter, s);
    auto in = crecv<T>(left, Coll::ReduceScatter, s);
    MBD_CHECK_EQ(in.size(), rhi - rlo);
    for (std::size_t i = 0; i < in.size(); ++i)
      work[rlo + i] = op(work[rlo + i], in[i]);
  }
  const auto [mlo, mhi] = block(rank_);
  return {work.begin() + static_cast<std::ptrdiff_t>(mlo),
          work.begin() + static_cast<std::ptrdiff_t>(mhi)};
}

template <typename T>
std::vector<T> Comm::gather(std::span<const T> local, int root) {
  const int p = size();
  MBD_CHECK(root >= 0 && root < p);
  // Linear gather concatenates whatever each rank offers; sizes may differ.
  obs::ScopedSpan obs_span(obs::SpanKind::CollWait, "gather");
  obs_span.set_args(local.size() * sizeof(T), 0);
  validate_entry({.kind = OpKind::Gather,
                  .count = CollectiveDesc::kAnyCount,
                  .elem_size = sizeof(T),
                  .elem_type = typeid(T).name(),
                  .root = root});
  if (rank_ != root) {
    csend<T>(root, local, Coll::Gather, 0);
    return {};
  }
  std::vector<T> out;
  for (int r = 0; r < p; ++r) {
    if (r == rank_) {
      out.insert(out.end(), local.begin(), local.end());
    } else {
      auto in = crecv<T>(r, Coll::Gather, 0);
      out.insert(out.end(), in.begin(), in.end());
    }
  }
  return out;
}

template <typename T>
std::vector<T> Comm::scatter(std::span<const T> all, int root,
                             std::size_t chunk) {
  const int p = size();
  MBD_CHECK(root >= 0 && root < p);
  obs::ScopedSpan obs_span(obs::SpanKind::CollWait, "scatter");
  obs_span.set_args(chunk * sizeof(T), 0);
  validate_entry({.kind = OpKind::Scatter,
                  .count = chunk,
                  .elem_size = sizeof(T),
                  .elem_type = typeid(T).name(),
                  .root = root});
  if (rank_ == root) {
    MBD_CHECK_EQ(all.size(), chunk * static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      if (r == rank_) continue;
      csend<T>(r, all.subspan(static_cast<std::size_t>(r) * chunk, chunk),
               Coll::Scatter, 0);
    }
    auto mine = all.subspan(static_cast<std::size_t>(rank_) * chunk, chunk);
    return {mine.begin(), mine.end()};
  }
  return crecv<T>(root, Coll::Scatter, 0);
}

// ---------------------------------------------------------------------------
// Nonblocking operation state machines.
//
// Each op is the corresponding blocking algorithm unrolled into a resumable
// loop: a step posts its send once (`sent_` latches across advance() calls)
// and then either polls or blocks for the matching receive. The schedules,
// block math, and reduction order are copied from the blocking versions
// above so byte counts and floating-point results are identical.
// ---------------------------------------------------------------------------

namespace detail {

template <typename T, typename Op>
class IAllReduceOp final : public PendingOp {
 public:
  IAllReduceOp(Comm comm, std::span<T> data, Op op, int tag_base,
               std::uint64_t op_base)
      : comm_(std::move(comm)),
        data_(data),
        op_(op),
        tag_base_(tag_base),
        op_base_(op_base) {}

  bool advance(Drive drive) override {
    const int p = comm_.size();
    const int rank = comm_.rank();
    const std::size_t n = data_.size();
    const int right = (rank + 1) % p;
    const int left = (rank - 1 + p) % p;
    auto block = [&](int b) {
      b = ((b % p) + p) % p;
      return std::pair{Comm::block_lo(n, p, b), Comm::block_lo(n, p, b + 1)};
    };
    // Steps 0..p-2: reduce-scatter phase; steps p-1..2p-3: all-gather phase.
    const int total = 2 * (p - 1);
    while (step_ < total) {
      const bool reduce_phase = step_ < p - 1;
      const int s = reduce_phase ? step_ : step_ - (p - 1);
      const auto [slo, shi] = reduce_phase ? block(rank - s)
                                           : block(rank + 1 - s);
      const auto [rlo, rhi] = reduce_phase ? block(rank - s - 1)
                                           : block(rank - s);
      if (!sent_) {
        NbAccess::send(comm_, right,
                       NbAccess::bytes(std::span<const T>(data_.data() + slo,
                                                          shi - slo)),
                       tag_base_ + step_, Coll::AllReduce,
                       op_base_ == 0
                           ? 0
                           : op_base_ + static_cast<std::uint64_t>(step_));
        sent_ = true;
      }
      if (drive == Drive::Post) return false;
      std::vector<std::byte> raw;
      if (drive == Drive::Block) {
        raw = NbAccess::recv(comm_, left, tag_base_ + step_);
      } else if (!NbAccess::try_recv(comm_, left, tag_base_ + step_, raw)) {
        return false;
      }
      auto in = NbAccess::typed<T>(std::move(raw));
      MBD_CHECK_EQ(in.size(), rhi - rlo);
      if (reduce_phase) {
        for (std::size_t i = 0; i < in.size(); ++i)
          data_[rlo + i] = op_(data_[rlo + i], in[i]);
      } else {
        std::copy(in.begin(), in.end(),
                  data_.begin() + static_cast<std::ptrdiff_t>(rlo));
      }
      sent_ = false;
      ++step_;
    }
    return true;
  }

 private:
  Comm comm_;
  std::span<T> data_;
  Op op_;
  int tag_base_;
  std::uint64_t op_base_;  // first reserved injector op identity (0 = none)
  int step_ = 0;
  bool sent_ = false;
};

template <typename T>
class IAllGatherOp final : public PendingOp {
 public:
  IAllGatherOp(Comm comm, std::span<T> out, std::size_t m, int tag_base,
               std::uint64_t op_base)
      : comm_(std::move(comm)),
        out_(out),
        m_(m),
        tag_base_(tag_base),
        op_base_(op_base) {}

  bool advance(Drive drive) override {
    const int p = comm_.size();
    const int rank = comm_.rank();
    const int right = (rank + 1) % p;
    const int left = (rank - 1 + p) % p;
    while (step_ < p - 1) {
      const int send_block = (rank - step_ + p) % p;
      const int recv_block = (rank - step_ - 1 + p) % p;
      if (!sent_) {
        NbAccess::send(
            comm_, right,
            NbAccess::bytes(std::span<const T>(
                out_.data() + static_cast<std::size_t>(send_block) * m_, m_)),
            tag_base_ + step_, Coll::AllGather,
            op_base_ == 0 ? 0
                          : op_base_ + static_cast<std::uint64_t>(step_));
        sent_ = true;
      }
      if (drive == Drive::Post) return false;
      std::vector<std::byte> raw;
      if (drive == Drive::Block) {
        raw = NbAccess::recv(comm_, left, tag_base_ + step_);
      } else if (!NbAccess::try_recv(comm_, left, tag_base_ + step_, raw)) {
        return false;
      }
      auto in = NbAccess::typed<T>(std::move(raw));
      MBD_CHECK_EQ(in.size(), m_);
      std::copy(in.begin(), in.end(),
                out_.begin() + static_cast<std::ptrdiff_t>(recv_block) *
                                   static_cast<std::ptrdiff_t>(m_));
      sent_ = false;
      ++step_;
    }
    return true;
  }

 private:
  Comm comm_;
  std::span<T> out_;
  std::size_t m_;
  int tag_base_;
  std::uint64_t op_base_;  // first reserved injector op identity (0 = none)
  int step_ = 0;
  bool sent_ = false;
};

template <typename T>
class IAllGatherVOp final : public PendingOp {
 public:
  IAllGatherVOp(Comm comm, std::span<const T> local, std::vector<T>* out,
                int tag_base, std::uint64_t op_base)
      : comm_(std::move(comm)),
        blocks_(static_cast<std::size_t>(comm_.size())),
        out_(out),
        tag_base_(tag_base),
        op_base_(op_base) {
    blocks_[static_cast<std::size_t>(comm_.rank())].assign(local.begin(),
                                                           local.end());
  }

  bool advance(Drive drive) override {
    const int p = comm_.size();
    const int rank = comm_.rank();
    const int right = (rank + 1) % p;
    const int left = (rank - 1 + p) % p;
    while (step_ < p - 1) {
      const int send_origin = (rank - step_ + p) % p;
      const int recv_origin = (rank - step_ - 1 + p) % p;
      if (!sent_) {
        NbAccess::send(comm_, right,
                       NbAccess::bytes(std::span<const T>(
                           blocks_[static_cast<std::size_t>(send_origin)])),
                       tag_base_ + step_, Coll::AllGather,
                       op_base_ == 0
                           ? 0
                           : op_base_ + static_cast<std::uint64_t>(step_));
        sent_ = true;
      }
      if (drive == Drive::Post) return false;
      std::vector<std::byte> raw;
      if (drive == Drive::Block) {
        raw = NbAccess::recv(comm_, left, tag_base_ + step_);
      } else if (!NbAccess::try_recv(comm_, left, tag_base_ + step_, raw)) {
        return false;
      }
      blocks_[static_cast<std::size_t>(recv_origin)] =
          NbAccess::typed<T>(std::move(raw));
      sent_ = false;
      ++step_;
    }
    std::size_t total = 0;
    for (const auto& b : blocks_) total += b.size();
    out_->clear();
    out_->reserve(total);
    for (const auto& b : blocks_) out_->insert(out_->end(), b.begin(), b.end());
    return true;
  }

 private:
  Comm comm_;
  std::vector<std::vector<T>> blocks_;
  std::vector<T>* out_;
  int tag_base_;
  std::uint64_t op_base_;  // first reserved injector op identity (0 = none)
  int step_ = 0;
  bool sent_ = false;
};

// The pending-receive half of isendrecv (the send is buffered at initiation).
template <typename T>
class IRecvOp final : public PendingOp {
 public:
  IRecvOp(Comm comm, int src, int tag, std::vector<T>* out)
      : comm_(std::move(comm)), src_(src), tag_(tag), out_(out) {}

  bool advance(Drive drive) override {
    // The send half was buffered at initiation; nothing to post here.
    if (drive == Drive::Post) return false;
    std::vector<std::byte> raw;
    if (drive == Drive::Block) {
      raw = NbAccess::recv(comm_, src_, tag_);
    } else if (!NbAccess::try_recv(comm_, src_, tag_, raw)) {
      return false;
    }
    *out_ = NbAccess::typed<T>(std::move(raw));
    return true;
  }

 private:
  Comm comm_;
  int src_;
  int tag_;
  std::vector<T>* out_;
};

}  // namespace detail

template <typename T, typename Op>
CollectiveHandle Comm::iallreduce(std::span<T> data, Op op) {
  validate_entry({.kind = OpKind::AllReduce,
                  .count = data.size(),
                  .elem_size = sizeof(T),
                  .elem_type = typeid(T).name(),
                  .reduce_op = typeid(Op).name(),
                  .algo = static_cast<int>(AllReduceAlgo::Ring),
                  .nonblocking = true});
  if (size() == 1) return {};
  const int tag_base = nb_tag_block();
  const std::uint64_t op_base =
      reserve_nb_ops(2 * static_cast<std::uint64_t>(size() - 1));
  return make_handle(std::make_unique<detail::IAllReduceOp<T, Op>>(
                         *this, data, op, tag_base, op_base),
                     "iallreduce",
                     "iallreduce(count=" + std::to_string(data.size()) + ')');
}

template <typename T>
CollectiveHandle Comm::iallgather(std::span<const T> local, std::span<T> out) {
  validate_entry({.kind = OpKind::AllGather,
                  .count = local.size(),
                  .elem_size = sizeof(T),
                  .elem_type = typeid(T).name(),
                  .algo = static_cast<int>(AllGatherAlgo::Ring),
                  .nonblocking = true});
  const std::size_t m = local.size();
  MBD_CHECK_EQ(out.size(), m * static_cast<std::size_t>(size()));
  std::copy(local.begin(), local.end(),
            out.begin() + static_cast<std::ptrdiff_t>(rank_) *
                              static_cast<std::ptrdiff_t>(m));
  if (size() == 1) return {};
  const int tag_base = nb_tag_block();
  const std::uint64_t op_base =
      reserve_nb_ops(static_cast<std::uint64_t>(size() - 1));
  return make_handle(std::make_unique<detail::IAllGatherOp<T>>(
                         *this, out, m, tag_base, op_base),
                     "iallgather", "iallgather(count=" + std::to_string(m) + ')');
}

template <typename T>
CollectiveHandle Comm::iallgatherv(std::span<const T> local,
                                   std::vector<T>* out) {
  MBD_CHECK(out != nullptr);
  validate_entry({.kind = OpKind::AllGatherV,
                  .count = CollectiveDesc::kAnyCount,
                  .elem_size = sizeof(T),
                  .elem_type = typeid(T).name(),
                  .nonblocking = true});
  if (size() == 1) {
    out->assign(local.begin(), local.end());
    return {};
  }
  const int tag_base = nb_tag_block();
  const std::uint64_t op_base =
      reserve_nb_ops(static_cast<std::uint64_t>(size() - 1));
  return make_handle(std::make_unique<detail::IAllGatherVOp<T>>(
                         *this, local, out, tag_base, op_base),
                     "iallgatherv",
                     "iallgatherv(local_count=" + std::to_string(local.size()) +
                         ')');
}

template <typename T>
CollectiveHandle Comm::isendrecv(int dst, std::span<const T> send_data,
                                 int src, std::vector<T>* recv_out, int tag) {
  MBD_CHECK(recv_out != nullptr);
  MBD_CHECK_MSG(tag >= 0 && tag < kInternalTagBase,
                "isendrecv tag " << tag << " outside the user tag space");
  send_bytes(dst, as_bytes_span(send_data), tag, Coll::PointToPoint);
  return make_handle(
      std::make_unique<detail::IRecvOp<T>>(*this, src, tag, recv_out),
      "isendrecv",
      "isendrecv(from=" + std::to_string(global_rank(src)) +
          ", tag=" + std::to_string(tag) + ')');
}

}  // namespace mbd::comm
