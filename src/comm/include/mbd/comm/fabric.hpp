// Shared state behind a World: one mailbox per global rank plus traffic
// counters. Internal to mbd::comm; user code holds Comm and World only.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "mbd/comm/fault.hpp"
#include "mbd/comm/mailbox.hpp"
#include "mbd/comm/schedule_recorder.hpp"
#include "mbd/comm/stats.hpp"
#include "mbd/comm/trace.hpp"
#include "mbd/comm/transport.hpp"
#include "mbd/comm/validator.hpp"

namespace mbd::comm::detail {

struct Fabric {
  explicit Fabric(int size)
      : Fabric(size, std::make_shared<InProcessTransport>()) {}

  // Distributed form: the transport is shared across fabric rebuilds
  // (run_restartable) and across the Worlds of one process; construction
  // re-points it at this fabric's mailboxes.
  Fabric(int size, std::shared_ptr<Transport> t)
      : mailboxes(static_cast<std::size_t>(size)), transport(std::move(t)) {
    transport->attach(this);
  }

  std::vector<Mailbox> mailboxes;
  // Delivery strategy: every Comm::send_bytes ends in transport->deposit.
  // In-process this is a direct Mailbox::push; socket transports serialize
  // to the destination process instead. Never null.
  std::shared_ptr<Transport> transport;
  StatsCounters counters;
  std::atomic<bool> poisoned{false};

  // Optional execution trace: allocated by World::enable_tracing(). Each
  // rank appends only to its own event list; message ids come from the
  // shared counter.
  std::unique_ptr<Trace> trace;
  std::atomic<std::uint64_t> next_msg_id{1};

  // Optional collective-call validator: allocated by
  // World::enable_validation() (default-on in Debug builds) strictly
  // before rank threads exist, so the plain pointer reads during a run
  // need no synchronization.
  std::unique_ptr<Validator> validator;

  // Optional schedule recording: allocated by
  // World::enable_schedule_recording() under the same publication rule as
  // the validator (strictly before rank threads exist). Each rank appends
  // only to its own log.
  std::unique_ptr<ScheduleRecording> recorder;

  // Optional fault injector: installed by World::install_faults strictly
  // before rank threads exist (same publication rule as the validator).
  // Shared so World::run_restartable can move it onto a fresh Fabric while
  // its cumulative event log survives.
  std::shared_ptr<FaultInjector> injector;

  bool tracing() const { return trace != nullptr; }

  // Release/acquire pairing with the loads in Comm::send_bytes and
  // World::run: a rank that observes poisoned==true is guaranteed to also
  // observe every write the poisoning thread made before failing (its
  // error slot in particular). The per-mailbox poisoned_ flag is mutex
  // protected and needs no ordering here; this flag alone gates the
  // fast-path throw in send_bytes.
  void poison_all() {
    poisoned.store(true, std::memory_order_release);
    for (auto& mb : mailboxes) mb.poison();
  }
};

}  // namespace mbd::comm::detail
