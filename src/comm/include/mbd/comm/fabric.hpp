// Shared state behind a World: one mailbox per global rank plus traffic
// counters. Internal to mbd::comm; user code holds Comm and World only.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "mbd/comm/mailbox.hpp"
#include "mbd/comm/stats.hpp"
#include "mbd/comm/trace.hpp"

namespace mbd::comm::detail {

struct Fabric {
  explicit Fabric(int size) : mailboxes(static_cast<std::size_t>(size)) {}

  std::vector<Mailbox> mailboxes;
  StatsCounters counters;
  std::atomic<bool> poisoned{false};

  // Optional execution trace: allocated by World::enable_tracing(). Each
  // rank appends only to its own event list; message ids come from the
  // shared counter.
  std::unique_ptr<Trace> trace;
  std::atomic<std::uint64_t> next_msg_id{1};

  bool tracing() const { return trace != nullptr; }

  void poison_all() {
    poisoned.store(true, std::memory_order_relaxed);
    for (auto& mb : mailboxes) mb.poison();
  }
};

}  // namespace mbd::comm::detail
