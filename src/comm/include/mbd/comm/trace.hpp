// Execution tracing: an optional per-rank event log of every message sent
// and received (with global message ids pairing them) plus user-annotated
// compute intervals. A recorded trace can be replayed under an α–β machine
// model (mbd::costmodel::replay_trace) to obtain a *schedule-aware*
// simulated wall-clock — serialization, load imbalance, and dependency
// chains included — which the closed-form cost model cannot see.
#pragma once

#include <cstdint>
#include <vector>

namespace mbd::comm {

/// One logged event on one rank. Ranks only ever append to their own log,
/// so recording is lock-free.
struct TraceEvent {
  enum class Kind { Send, Recv, Compute };
  Kind kind = Kind::Compute;
  int peer = -1;             ///< global rank of the other side (Send/Recv)
  std::uint64_t bytes = 0;   ///< payload size (Send/Recv)
  std::uint64_t msg_id = 0;  ///< pairs a Recv with its Send
  double seconds = 0.0;      ///< annotated duration (Compute)
};

/// A complete recording: one ordered event list per global rank.
struct Trace {
  std::vector<std::vector<TraceEvent>> ranks;

  std::size_t total_events() const {
    std::size_t n = 0;
    for (const auto& r : ranks) n += r.size();
    return n;
  }
};

}  // namespace mbd::comm
