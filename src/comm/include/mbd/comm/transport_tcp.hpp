// TCP socket transport: one process per rank, length-prefixed frames.
//
// Wire model. Every rank binds a listening socket, then dials every peer
// once: the dialed connection is the rank's *send* channel to that peer and
// opens with a Hello frame (magic, protocol version, world size, sender
// rank); the accepted connections are its *receive* channels, one receive
// thread per peer, each depositing inbound Msg frames into the single local
// mailbox. TCP's per-connection ordering plus one connection per direction
// per peer preserves exactly the mailbox FIFO-per-channel guarantee of the
// in-process fabric, so collective schedules, seq/dedup, the validator and
// the fault injector run unchanged (see mbd/comm/transport.hpp).
//
// Frames are length-prefixed (u32 little-endian length, then a u8 type):
//
//   Hello        magic, version, world_size, sender rank
//   Msg          epoch, context, source, tag, seq, trace_id, payload
//   RetryRequest epoch, starving rank — "flush whatever your fault injector
//                swallowed or deferred for me" (receiver-driven
//                retransmission across processes)
//   PeerFailure  epoch, failed rank, reason — a remote rank's primary error
//   Goodbye      clean close; EOF *without* Goodbye while a run is active is
//                a peer death and surfaces locally as RankFailure
//
// Failure semantics. A peer disconnect or PeerFailure poisons the local
// fabric and is rethrown by World::run as RankFailure, so
// World::run_restartable's coordinated teardown/rebuild works off-process:
// every rank advances to the next epoch, frames from dead epochs are
// dropped, and frames from ranks that restarted early buffer until the
// local fabric catches up.
//
// The framing layer (wire::) is pure in-memory encode/decode plus a
// write(2) loop, exposed for direct unit testing of partial writes, short
// reads, and interleaved frame streams.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "mbd/comm/transport.hpp"

namespace mbd::comm {

namespace wire {

/// Frame types on a transport connection.
enum class FrameType : std::uint8_t {
  Hello = 1,
  Msg = 2,
  RetryRequest = 3,
  PeerFailure = 4,
  Goodbye = 5,
};

/// "mbdW" — first field of a Hello; rejects strangers dialing the port.
constexpr std::uint32_t kMagic = 0x6D626457;
/// Bumped on any frame-layout change; Hello carries it.
constexpr std::uint32_t kProtocolVersion = 1;
/// Ceiling on one frame's byte length; a larger length prefix means a
/// corrupt or hostile stream and decoding throws instead of allocating.
constexpr std::uint32_t kMaxFrameBytes = 1U << 30;

/// One decoded frame; which fields are meaningful depends on `type`.
struct Frame {
  FrameType type = FrameType::Goodbye;
  int epoch = 0;       ///< Msg / RetryRequest / PeerFailure
  int rank = -1;       ///< Hello: sender; RetryRequest: starving rank;
                       ///< PeerFailure: failed rank
  int world_size = 0;  ///< Hello
  std::string what;    ///< PeerFailure: reason
  Message msg;         ///< Msg (trace_id/seq/payload included)
};

std::vector<std::byte> encode_hello(int rank, int world_size);
std::vector<std::byte> encode_message(int epoch, const Message& msg);
std::vector<std::byte> encode_retry_request(int epoch, int starving_rank);
std::vector<std::byte> encode_peer_failure(int epoch, int failed_rank,
                                           std::string_view what);
std::vector<std::byte> encode_goodbye();

/// Incremental decoder: feed() arbitrary chunks as read(2) produces them,
/// next() yields complete frames. Tolerates any chunking, including one
/// byte at a time and multiple frames per chunk.
class FrameDecoder {
 public:
  void feed(std::span<const std::byte> bytes);
  /// The next complete frame, or std::nullopt if more bytes are needed.
  /// Throws mbd::Error on a malformed frame (bad type, oversized length,
  /// truncated fixed fields).
  std::optional<Frame> next();
  /// Bytes buffered but not yet consumed by next().
  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::vector<std::byte> buf_;
  std::size_t pos_ = 0;
};

/// write(2) the whole span to `fd`: loops over short writes, retries EINTR,
/// and poll()s through EAGAIN (blocking and non-blocking sockets both work).
/// Throws mbd::Error when the peer is gone (EPIPE/ECONNRESET/...).
void write_all(int fd, std::span<const std::byte> bytes);

}  // namespace wire

/// One peer's address for TcpTransport::connect_mesh. `host` is a numeric
/// IPv4 address ("127.0.0.1") or "localhost".
struct TcpEndpoint {
  std::string host;
  std::uint16_t port = 0;
};

struct TcpOptions {
  /// Deadline for the whole mesh handshake (dial every peer + be dialed by
  /// every peer). Generous: under sanitizers process startup is slow.
  std::chrono::milliseconds connect_timeout{60'000};
  /// Drain grace on shutdown: how long to wait for each peer's Goodbye
  /// before force-closing the receive side.
  std::chrono::milliseconds shutdown_timeout{30'000};
  /// Announced latency class; drives the validator watchdog scale.
  TransportLatency latency = TransportLatency::LoopbackSocket;
  /// Hot-spare participants beyond world_size. The full mesh spans
  /// world_size + spares processes; participants world_size..world_size+S-1
  /// start idle (no logical slot) and are promoted into a dead rank's slot
  /// by Transport::promote. Every participant must agree on this value (it
  /// is validated by the Hello handshake via the total participant count).
  int spares = 0;
};

/// Socket transport hosting one rank of a multi-process world. Lifecycle:
/// construct (binds + listens, port() reports the ephemeral port), publish
/// the address, connect_mesh() with every rank's endpoint, hand the shared
/// transport to World(size, rank, transport), run; shutdown() (or the
/// destructor) exchanges Goodbyes and drains.
class TcpTransport final : public Transport {
 public:
  /// Bind and listen on host:port (port 0 picks an ephemeral port) and
  /// start accepting peers. Throws mbd::Error on bind failure.
  TcpTransport(int world_size, int rank, const std::string& host,
               std::uint16_t port, TcpOptions opts = {});
  ~TcpTransport() override;

  int world_size() const { return world_size_; }
  /// Physical participant id of this process (may be >= world_size for a
  /// hot spare). Routing keys on *logical* slots: deposit(dst) resolves the
  /// slot's current owner through the promotion table.
  int rank() const { return rank_; }
  /// Total physical participants (world_size + spares).
  int participants() const { return participants_; }
  /// Logical slot this participant currently occupies (-1: idle spare).
  int local_slot() const;
  /// The actually-bound listen port.
  std::uint16_t port() const { return port_; }

  /// Establish the full mesh: dial every participant's endpoint (retrying
  /// refusals until connect_timeout — peers may not be listening yet) and
  /// wait until every participant has dialed us. `peers[i]` addresses
  /// physical participant i (actives then spares); peers[rank()] is
  /// ignored. Throws mbd::Error on timeout.
  void connect_mesh(const std::vector<TcpEndpoint>& peers);

  /// Spare API: block until a rank failure is observed — a PeerFailure
  /// frame or a peer EOF without Goodbye — and return the failed logical
  /// slot. Returns nullopt when a peer closes cleanly first (the run ended
  /// without needing this spare) or `timeout` expires. The caller then
  /// promotes itself: promote(slot, rank()), begin_epoch(next), and builds
  /// a World over the slot.
  std::optional<int> await_failure(std::chrono::milliseconds timeout);

  /// Clean close: send Goodbye to every peer, drain until each peer's
  /// Goodbye (or shutdown_timeout), then close. Idempotent.
  void shutdown();
  /// Abrupt close with no Goodbye — peers observe a mid-run disconnect and
  /// surface RankFailure. Test hook for the peer-death path.
  void kill_for_test();

  // --- Transport ---------------------------------------------------------
  std::string_view name() const override { return "tcp"; }
  TransportLatency latency() const override { return opts_.latency; }
  void deposit(int dst, Message msg) override;
  void request_retransmit(int dst) override;
  void broadcast_failure(const std::string& what) override;
  std::exception_ptr take_failure() override;
  void attach(detail::Fabric* fabric) override;
  void begin_epoch(int epoch) override;
  /// Re-point logical slot `slot` at physical participant `spare` and mark
  /// the previous owner dead (its late EOF must not poison the repaired
  /// epoch). When `spare` is this participant, it adopts the slot as its
  /// local one. Called with no local rank threads running.
  void promote(int slot, int spare) override;

 private:
  struct Peer {
    std::mutex send_mu;  // one frame at a time per connection
    int send_fd = -1;    // the connection we dialed
    int recv_fd = -1;    // the connection the peer dialed
  };

  void accept_loop();
  void receive_loop(int peer_rank, int fd);
  // Route one inbound frame; returns false on Goodbye (loop exits).
  bool handle_frame(int peer_rank, wire::Frame f);
  void deposit_local_locked(Message msg);
  // Record a RankFailure for logical slot `slot` and poison the local
  // fabric.
  void fail_peer(int slot, const std::string& what);
  // Same, keyed by the physical participant a connection belongs to: maps
  // it to its current slot; a participant that is already dead (replaced by
  // promotion) or holds no slot (idle spare) is ignored.
  void fail_peer_phys(int phys, const std::string& what);
  void send_frame(int dst_slot, std::span<const std::byte> bytes);
  void close_all_fds();

  int world_size_;
  int rank_;           // physical participant id (may be >= world_size_)
  int participants_;   // world_size_ + opts_.spares
  TcpOptions opts_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  // By physical participant id; [rank_] unused.
  std::vector<std::unique_ptr<Peer>> peers_;
  std::thread accept_thread_;
  std::vector<std::thread> recv_threads_;

  std::atomic<bool> closing_{false};

  // Guards fabric_ (re-pointed by attach between runs while receive threads
  // deposit), epoch_, pending_, failure_, the promotion tables, and the
  // handshake counters.
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int epoch_ = 0;
  int inbound_peers_ = 0;      // peers whose Hello we accepted
  int goodbyes_seen_ = 0;      // peers that closed cleanly
  int recv_loops_live_ = 0;    // receive threads still draining
  std::deque<wire::Frame> pending_;  // frames from a future epoch
  std::exception_ptr failure_;
  int failed_slot_ = -1;       // slot of the first recorded failure
  int local_slot_ = -1;        // slot this participant occupies (-1: spare)
  std::vector<int> slot_owner_;  // logical slot -> physical participant
  std::vector<char> dead_;       // physical participant -> replaced by promote
};

}  // namespace mbd::comm
