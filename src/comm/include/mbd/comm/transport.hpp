// Transport strategy for the mbd::comm runtime.
//
// A Transport is the one seam between a Comm and the wire: every payload a
// rank sends ends its journey in a call to Transport::deposit, which must
// land the message in the *destination* rank's mailbox. Everything above the
// deposit — collective schedules, per-channel seq/dedup, receiver-driven
// retransmission, the validator, schedule recording, fault injection, obs
// spans — is transport-agnostic and works unchanged over any backend:
//
//  * InProcessTransport (the default): every rank is a thread of this
//    process, the fabric owns all P mailboxes, and deposit is a direct
//    Mailbox::push. This is the original thread-backed fabric.
//  * TcpTransport (mbd/comm/transport_tcp.hpp): each process hosts one rank;
//    deposit serializes the message into a length-prefixed frame and writes
//    it to the destination's socket, and a per-peer receive loop deposits
//    inbound frames into the single local mailbox.
//
// The transport also owns the two failure-path duties that only make sense
// off-process: surfacing a dead peer as a RankFailure (take_failure) and
// forwarding a local rank's primary failure to the peers (broadcast_failure)
// so a distributed World::run_restartable can coordinate a restart.
#pragma once

#include <exception>
#include <string>
#include <string_view>

#include "mbd/comm/mailbox.hpp"

namespace mbd::comm {

namespace detail {
struct Fabric;
}  // namespace detail

/// Rough latency class of a transport. The validator's recv watchdog
/// multiplies its default (or MBD_WATCHDOG_MS-supplied) deadline by
/// watchdog_scale(latency) so socket-backed runs do not need every CI job to
/// hand-tune the environment; an explicit World::set_validation_timeout is
/// never scaled.
enum class TransportLatency : int {
  InProcess = 0,   ///< same-process thread handoff (scale 1)
  LoopbackSocket,  ///< kernel loopback TCP, one host (scale 5)
  Network,         ///< real NIC between hosts (scale 15)
};

/// Watchdog deadline multiplier for a latency class.
int watchdog_scale(TransportLatency latency);

/// Human-readable name of a latency class.
std::string_view transport_latency_name(TransportLatency latency);

/// Delivery strategy behind the mailbox API. One instance is shared by every
/// Fabric a World builds (run_restartable rebuilds the fabric but keeps the
/// transport), so implementations must tolerate attach() re-pointing them at
/// a fresh fabric between runs. All methods except attach/begin_epoch are
/// called concurrently from rank threads and must be thread-safe.
class Transport {
 public:
  Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;
  virtual ~Transport() = default;

  virtual std::string_view name() const = 0;
  virtual TransportLatency latency() const = 0;

  /// Land `msg` in global rank `dst`'s mailbox. For a remote `dst` this is a
  /// wire send; the peer's receive loop performs the actual Mailbox::push,
  /// so seq dedup and in-order delivery happen at the destination exactly as
  /// in-process. Throws PoisonedError if the wire to `dst` is down.
  virtual void deposit(int dst, Message msg) = 0;

  /// Receiver-side retransmission request from global rank `dst`'s blocking
  /// pop retry hook: ask every *remote* peer to flush anything its fault
  /// injector swallowed or deferred for `dst`. The local injector is always
  /// asked directly by Comm; in-process that covers every sender, so the
  /// default is a no-op.
  virtual void request_retransmit(int dst) { (void)dst; }

  /// Tell remote peers this process's rank failed with `what` so they can
  /// surface a RankFailure too (coordinated restart). No-op in-process: all
  /// ranks share the fabric and see the poison directly.
  virtual void broadcast_failure(const std::string& what) { (void)what; }

  /// A transport-detected failure (peer death, mid-run disconnect, remote
  /// broadcast_failure), cleared on read. Distributed World::run rethrows
  /// this in preference to the local rank's secondary PoisonedError wakeup.
  virtual std::exception_ptr take_failure() { return nullptr; }

  /// Point this transport at the fabric whose mailboxes it feeds. Called
  /// from the Fabric constructor — for a rebuild (run_restartable), strictly
  /// after begin_epoch(next) so frames buffered for the new epoch flush into
  /// the fresh mailboxes and stale ones are dropped. attach(nullptr)
  /// detaches: the rebuild/repair paths do this *before* begin_epoch so a
  /// fast peer's new-epoch frames buffer instead of landing in the dying
  /// fabric's mailboxes (where they would be lost).
  virtual void attach(detail::Fabric* fabric) { fabric_ = fabric; }

  /// Advance to restart attempt `epoch`: drop frames from older epochs,
  /// clear any recorded failure. Called with no local rank threads running.
  virtual void begin_epoch(int epoch) { (void)epoch; }

  /// Re-point logical slot `slot` at physical participant `spare` (spare
  /// promotion). In-process the slot/participant distinction does not exist
  /// — mailboxes are indexed by logical rank and the promoted spare is just
  /// a fresh thread — so the default is a no-op. The TCP transport remaps
  /// its slot-to-connection table and marks the dead peer so stale EOFs from
  /// it are ignored. Called with no local rank threads running, before
  /// begin_epoch of the repaired epoch's first exchange.
  virtual void promote(int slot, int spare) {
    (void)slot;
    (void)spare;
  }

 protected:
  detail::Fabric* fabric_ = nullptr;
};

/// The default thread-backed transport: all ranks live in this process and
/// deposit is a direct push into the shared fabric's destination mailbox.
class InProcessTransport final : public Transport {
 public:
  std::string_view name() const override { return "in-process"; }
  TransportLatency latency() const override {
    return TransportLatency::InProcess;
  }
  void deposit(int dst, Message msg) override;
};

}  // namespace mbd::comm
