// Communication instrumentation.
//
// Every byte that crosses a rank boundary in the mbd::comm runtime is
// attributed to the collective (or point-to-point class) that moved it. This
// is the ground truth against which the analytic α–β cost model of the paper
// (Eqs. 3, 4, 7, 8, 9) is validated: the model's bandwidth terms are exact
// word counts per process, not asymptotics, so measured == predicted is a
// meaningful equality test.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string_view>

namespace mbd::comm {

/// Classification of traffic for instrumentation.
enum class Coll : int {
  PointToPoint = 0,  ///< user send/recv and sendrecv (incl. halo exchange)
  Barrier,
  Broadcast,
  Reduce,
  AllReduce,
  ReduceScatter,
  AllGather,
  Gather,
  Scatter,
  kCount
};

/// Human-readable name of a Coll value.
std::string_view coll_name(Coll c);

/// One traffic class: bytes on the wire and discrete messages.
struct TrafficEntry {
  std::uint64_t bytes = 0;
  std::uint64_t messages = 0;
};

/// Immutable snapshot of the fabric's counters.
struct StatsSnapshot {
  std::array<TrafficEntry, static_cast<int>(Coll::kCount)> by_coll{};

  const TrafficEntry& operator[](Coll c) const {
    return by_coll[static_cast<int>(c)];
  }
  /// Total bytes across all traffic classes.
  std::uint64_t total_bytes() const;
  /// Total messages across all traffic classes.
  std::uint64_t total_messages() const;
  /// Difference (this - earlier), entrywise. Earlier must be a prefix in time.
  StatsSnapshot since(const StatsSnapshot& earlier) const;
};

/// Lock-free accumulator shared by all ranks of a World.
class StatsCounters {
 public:
  /// Record one message of `bytes` payload under class `c`.
  void record(Coll c, std::uint64_t bytes) {
    auto& e = entries_[static_cast<int>(c)];
    e.bytes.fetch_add(bytes, std::memory_order_relaxed);
    e.messages.fetch_add(1, std::memory_order_relaxed);
  }

  StatsSnapshot snapshot() const;
  void reset();

 private:
  struct AtomicEntry {
    std::atomic<std::uint64_t> bytes{0};
    std::atomic<std::uint64_t> messages{0};
  };
  std::array<AtomicEntry, static_cast<int>(Coll::kCount)> entries_;
};

}  // namespace mbd::comm
