// World: spawns P ranks as threads and runs a function on each.
//
// This is the single-node, oversubscribed substitute for an MPI job (the
// paper ran on NERSC Cori). Collective *algorithms* and therefore message and
// byte counts are identical to the distributed setting; only wall-clock
// timing differs, and nothing in this project reports thread timing as
// cluster timing.
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mbd/comm/comm.hpp"
#include "mbd/comm/fault.hpp"
#include "mbd/comm/stats.hpp"
#include "mbd/comm/transport.hpp"

namespace mbd::comm {

/// What World::run_restartable did: how many times it tore down and reran,
/// a human-readable restart log, and (when a fault injector is installed)
/// the cumulative injected-fault event log. Everything here is a
/// deterministic function of the fault plan — asserting equality across
/// runs is the replayability test.
/// One spare promotion performed by World::run_promotable: which spare took
/// which dead rank's slot at which epoch, and why. Deterministic under a
/// replayed fault plan, so tests pin the whole sequence.
struct Promotion {
  int epoch = 0;        ///< epoch the promoted spare first runs in
  int failed_rank = -1; ///< logical slot that died
  int spare = -1;       ///< participant id promoted into the slot (size_ + k)
  std::string reason;   ///< the RankFailure's message
};

struct RecoveryReport {
  int restarts = 0;
  /// One line per restart or promotion: which attempt failed and why.
  std::vector<std::string> log;
  /// FaultInjector::events() at completion (empty without an injector).
  std::vector<FaultEvent> events;
  /// Spare promotions, in order (empty under run_restartable).
  std::vector<Promotion> promotions;
  /// Per recovery attempt, the fabric-recovery step alone in nanoseconds:
  /// rebuild_fabric for run_restartable, promote + repair_fabric_in_place
  /// for run_promotable. Excludes the replayed training; bench_recovery
  /// compares the two paths with this.
  std::vector<std::uint64_t> repair_ns;
};

/// A fixed-size group of ranks backed by threads.
class World {
 public:
  /// Create a world of `size` ranks (size >= 1). Collective-call validation
  /// (see validator.hpp) starts enabled in Debug (!NDEBUG) builds.
  explicit World(int size);

  /// Distributed form: this process hosts exactly `local_rank` of a
  /// `size`-rank world, with the other ranks reached through `transport`
  /// (e.g. a connected TcpTransport). run() then executes `fn` on the local
  /// rank only; deposits to remote ranks go over the wire and peer failures
  /// surface as RankFailure, so run_restartable coordinates restarts across
  /// processes. The watchdog deadline scales with the transport's latency
  /// class and the validator observes the local rank only.
  World(int size, int local_rank, std::shared_ptr<Transport> transport);

  int size() const { return size_; }
  /// The rank this process hosts, or -1 for a thread-backed world.
  int local_rank() const { return local_rank_; }
  /// True for the distributed (one-rank-per-process) form.
  bool distributed() const { return local_rank_ >= 0; }
  /// The delivery strategy behind this world's fabric.
  const Transport& transport() const;

  /// Run `fn(comm)` on every rank concurrently; returns when all ranks
  /// finish. If any rank throws, the fabric is poisoned (blocked ranks are
  /// woken with an error) and the failing rank's original exception is
  /// rethrown here — secondary PoisonedErrors from woken peers never mask
  /// it. May be called repeatedly; mailboxes must be drained by each run
  /// (collective code always does). When validation is on, a nonblocking
  /// operation whose CollectiveHandle was never driven to completion fails
  /// the run with a named ValidationError ("leaked CollectiveHandle: ...")
  /// after the ranks join, distinct from the watchdog's deadlock report.
  void run(const std::function<void(Comm&)>& fn);

  /// run(fn) with crash recovery: a RankFailure (the injected-crash error —
  /// any other exception propagates unchanged) tears the poisoned fabric
  /// down, rebuilds it with the same validation / tracing / fault-injection
  /// configuration, advances the injector to the next epoch, and reruns
  /// `fn`. `fn` is responsible for restoring its own state (the parallel
  /// layer's CheckpointStore does exactly that); after `max_restarts`
  /// failed attempts the RankFailure is rethrown. Unlike run(), the World
  /// stays usable after an injected crash.
  RecoveryReport run_restartable(const std::function<void(Comm&)>& fn,
                                 int max_restarts = 3);

  /// Declare `spares` hot-spare participants available for promotion by
  /// run_promotable. Thread-backed worlds promote by spawning a fresh thread
  /// into the dead rank's slot; a distributed world additionally remaps the
  /// transport slot so the pre-connected spare process takes over the wire.
  /// Only call between run()s.
  void set_spares(int spares);
  int spares() const { return spares_; }

  /// run(fn) with spare-promotion recovery — the cheap alternative to
  /// run_restartable: on a rank-attributed RankFailure the fabric is
  /// repaired *in place* (only the dead rank's mailbox state, plus transient
  /// validator/recorder/trace state, is rebuilt; no fabric teardown), the
  /// next spare participant is promoted into the dead slot via
  /// Transport::promote, and `fn` reruns. Survivors restore from their
  /// in-memory CheckpointStore exactly as under run_restartable. The
  /// RankFailure is rethrown when the spare pool is exhausted, when the
  /// failure cannot be attributed to a rank, or — distributed — on the
  /// victim process itself (the spare takes its slot; the victim exits).
  /// RecoveryReport::promotions records each promotion.
  RecoveryReport run_promotable(const std::function<void(Comm&)>& fn);

  /// Install a fault-injection plan for subsequent run() calls (replacing
  /// any previous one). Only call between run()s. See mbd/comm/fault.hpp.
  void install_faults(FaultPlan plan, FaultConfig cfg = {});
  /// The installed injector (event log, op counters); nullptr if none.
  FaultInjector* fault_injector() const;

  /// Traffic counters accumulated over all run() calls since construction or
  /// the last reset_stats().
  StatsSnapshot stats() const;
  void reset_stats();

  /// Start recording an execution trace (per-rank event logs); subsequent
  /// run() calls append to it. See mbd/comm/trace.hpp.
  void enable_tracing();
  /// The recorded trace; empty per-rank logs if tracing was never enabled.
  /// Only call between run()s (rank threads append concurrently during one).
  const Trace& trace() const;
  /// Clear the recorded events (tracing stays enabled).
  void reset_trace();

  /// Start recording the full per-rank communication schedule (message
  /// sends/receives, collective-entry descriptors, nonblocking handle
  /// lifetimes, engine-step markers); subsequent run() calls append to it.
  /// This is the extraction substrate of the static schedule analyzer
  /// (mbd/analysis). See mbd/comm/schedule_recorder.hpp.
  void enable_schedule_recording();
  /// The recorded schedule; empty per-rank logs if recording was never
  /// enabled. Only call between run()s (rank threads append during one).
  const ScheduleRecording& schedule_recording() const;
  /// Clear the recorded events (recording stays enabled).
  void reset_schedule_recording();

  /// Turn on collective-call validation and the recv watchdog for subsequent
  /// run() calls (idempotent; on by default in Debug builds). Only call
  /// between run()s. See mbd/comm/validator.hpp for what is checked.
  void enable_validation();
  /// Turn validation back off. Only call between run()s.
  void disable_validation();
  bool validation_enabled() const;
  /// Watchdog timeout for blocking receives while validation is enabled
  /// (default Validator::kDefaultTimeout, overridable via the
  /// MBD_WATCHDOG_MS environment variable). Enables validation if needed.
  void set_validation_timeout(std::chrono::milliseconds t);
  /// The effective watchdog timeout; 0 when validation is off.
  std::chrono::milliseconds validation_timeout() const;

 private:
  void configure_validator(Validator& v) const;
  void rebuild_fabric(int next_epoch);
  void repair_fabric_in_place(int next_epoch);

  int size_;
  int local_rank_ = -1;  // -1: thread-backed, all ranks in-process
  int spares_ = 0;
  std::shared_ptr<detail::Fabric> fabric_;
};

}  // namespace mbd::comm
