// World: spawns P ranks as threads and runs a function on each.
//
// This is the single-node, oversubscribed substitute for an MPI job (the
// paper ran on NERSC Cori). Collective *algorithms* and therefore message and
// byte counts are identical to the distributed setting; only wall-clock
// timing differs, and nothing in this project reports thread timing as
// cluster timing.
#pragma once

#include <functional>
#include <memory>

#include "mbd/comm/comm.hpp"
#include "mbd/comm/stats.hpp"

namespace mbd::comm {

/// A fixed-size group of ranks backed by threads.
class World {
 public:
  /// Create a world of `size` ranks (size >= 1).
  explicit World(int size);

  int size() const { return size_; }

  /// Run `fn(comm)` on every rank concurrently; returns when all ranks
  /// finish. If any rank throws, the fabric is poisoned (blocked ranks are
  /// woken with an error) and the first exception is rethrown here.
  /// May be called repeatedly; mailboxes must be drained by each run
  /// (collective code always does).
  void run(const std::function<void(Comm&)>& fn);

  /// Traffic counters accumulated over all run() calls since construction or
  /// the last reset_stats().
  StatsSnapshot stats() const;
  void reset_stats();

  /// Start recording an execution trace (per-rank event logs); subsequent
  /// run() calls append to it. See mbd/comm/trace.hpp.
  void enable_tracing();
  /// The recorded trace; empty per-rank logs if tracing was never enabled.
  /// Only call between run()s (rank threads append concurrently during one).
  const Trace& trace() const;
  /// Clear the recorded events (tracing stays enabled).
  void reset_trace();

 private:
  int size_;
  std::shared_ptr<detail::Fabric> fabric_;
};

}  // namespace mbd::comm
