// Runtime collective-call validation for the mbd::comm runtime.
//
// Standard MPI semantics require every rank of a communicator to call the
// same sequence of collectives with compatible arguments. Violations in a
// message-passing runtime do not crash — they hang, or worse, silently
// mis-match payloads. The Validator turns both failure modes into precise,
// rank-attributed diagnostics:
//
//  * Every collective entry registers a descriptor (op kind, element type,
//    count, algorithm, reduce op, root) in a per-context rendezvous slot.
//    The first rank whose descriptor disagrees with the slot throws a
//    ValidationError naming both ranks and both calls — e.g. "rank 3 called
//    allreduce(count=1024, ...) but rank 0 called allgather(count=512, ...)"
//    — instead of deadlocking inside the collective's message schedule.
//  * A watchdog bounds every blocking Mailbox receive: a rank blocked past a
//    configurable timeout throws a probable-deadlock report that dumps each
//    rank's last-known collective so the missing or extra call is evident.
//
// Enabled via World::enable_validation(); on by default in Debug builds
// (!NDEBUG). Overhead is one mutex-protected map operation per collective
// entry — negligible next to the payload copies the transport already does.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "mbd/support/check.hpp"

namespace mbd::comm {

/// Thrown by the validator on a collective-argument mismatch.
class ValidationError : public ::mbd::Error {
 public:
  using Error::Error;
};

/// The operation kinds the validator distinguishes. Finer-grained than the
/// Coll traffic classes: allgatherv has different matching rules than
/// allgather, and split/alltoall are validated even though their traffic is
/// recorded under other classes.
enum class OpKind : int {
  Barrier = 0,
  Broadcast,
  Reduce,
  AllGather,
  AllGatherV,
  AllReduce,
  ReduceScatter,
  Gather,
  Scatter,
  AllToAll,
  Split,
  kCount
};

/// Human-readable name of an OpKind value.
std::string_view op_kind_name(OpKind k);

/// What one rank claims about the collective it is entering. Two ranks match
/// when every field agrees; `count == kAnyCount` marks operations whose
/// element counts may legitimately differ across ranks (allgatherv, gather).
struct CollectiveDesc {
  /// Sentinel count for collectives with legitimately rank-varying sizes.
  static constexpr std::size_t kAnyCount = ~std::size_t{0};

  OpKind kind = OpKind::Barrier;
  std::size_t count = 0;         ///< elements per rank, or kAnyCount
  std::size_t elem_size = 0;     ///< sizeof(T), 0 if no payload
  std::string_view elem_type{};  ///< typeid(T).name(), empty if no payload
  std::string_view reduce_op{};  ///< typeid(Op).name(), empty if no reduction
  int algo = -1;                 ///< AllGatherAlgo/AllReduceAlgo value, or -1
  int root = -1;                 ///< root rank, or -1 for rootless ops
  /// Initiated via the nonblocking API. Part of the match so a rank calling
  /// allreduce() against peers calling iallreduce() (whose tags live in a
  /// different space and would never pair up) fails loudly instead of
  /// hanging.
  bool nonblocking = false;

  bool matches(const CollectiveDesc& other) const {
    return kind == other.kind && count == other.count &&
           elem_size == other.elem_size && elem_type == other.elem_type &&
           reduce_op == other.reduce_op && algo == other.algo &&
           root == other.root && nonblocking == other.nonblocking;
  }

  /// "allreduce(count=1024, elem=float, op=std::plus<float>, algo=0)".
  std::string describe() const;
};

/// Shared rendezvous state for one World; owned by the Fabric and consulted
/// by every Comm on collective entry. Thread-safe.
class Validator {
 public:
  /// Default watchdog timeout. Generous so heavily oversubscribed sanitizer
  /// runs never trip it; tests that provoke deadlocks lower it. The
  /// MBD_WATCHDOG_MS environment variable (a positive integer, read at
  /// construction) overrides this default so CI jobs can lengthen it
  /// without code edits; World::set_validation_timeout overrides both.
  static constexpr std::chrono::milliseconds kDefaultTimeout{120'000};

  explicit Validator(int world_size);

  /// Register `comm_rank` (global rank `global_rank`) entering a collective
  /// described by `desc` on communicator `context` of `comm_size` ranks.
  /// Throws ValidationError if the descriptor disagrees with the one the
  /// first-arriving rank registered for the same operation slot.
  void on_enter(std::uint64_t context, int comm_rank, int global_rank,
                int comm_size, const CollectiveDesc& desc);

  /// Record user point-to-point activity (for the deadlock report only).
  void on_p2p(int global_rank, std::string activity);

  /// Track a nonblocking operation from initiation to completion. The token
  /// returned by on_nb_initiated is surrendered via on_nb_completed when the
  /// handle's wait()/test() observes completion; anything still tracked is a
  /// leaked or un-waited CollectiveHandle and is reported by name both in
  /// deadlock_report() and at the end of World::run.
  std::uint64_t on_nb_initiated(int global_rank, std::string what);
  void on_nb_completed(int global_rank, std::uint64_t token);
  /// RAII cancellation: ~CollectiveHandle calls this when an incomplete
  /// handle is destroyed during exception unwind — the operation stops
  /// being tracked (it is an abandonment the unwind explains, not a leak)
  /// and the cancellation is counted so World::run can drain the parked
  /// schedule messages after the ranks join. Tolerates unknown tokens.
  void on_nb_cancelled(int global_rank, std::uint64_t token);
  /// Cancellations since the last call (resets the counter).
  std::uint64_t take_cancelled();
  /// "rank R: <op>" lines for every initiated-but-incomplete nonblocking
  /// operation, in initiation order; empty when all handles completed.
  std::vector<std::string> outstanding_nonblocking() const;

  /// Watchdog timeout for blocking receives. An explicit set_timeout is
  /// exact: it wins over the default, the environment override, and the
  /// transport latency scale alike.
  void set_timeout(std::chrono::milliseconds t);
  std::chrono::milliseconds timeout() const;

  /// Scale the default (or MBD_WATCHDOG_MS) deadline by the transport's
  /// latency class (see watchdog_scale in mbd/comm/transport.hpp), so
  /// socket-backed runs get a proportionally longer watchdog without every
  /// CI job overriding the environment. Never applied on top of an explicit
  /// set_timeout.
  void set_timeout_scale(int scale);

  /// Observe only this process's rank (multi-process worlds): cross-rank
  /// collective rendezvous matching is skipped — the peers' descriptors
  /// live in other processes, so a slot would never retire — while
  /// last-activity tracking, the recv watchdog, and nonblocking handle-leak
  /// detection stay on.
  void set_local_only(bool local_only);
  bool local_only() const;

  /// Copy timeout / scale / scope configuration from `other` (fabric
  /// rebuild under World::run_restartable).
  void adopt_settings(const Validator& other);

  /// Drop all transient rendezvous state — in-flight collective slots,
  /// last-activity lines, tracked nonblocking handles, and the cancellation
  /// counter — while keeping timeout / scale / scope settings and the token
  /// counter. In-place fabric repair for spare promotion: the next epoch
  /// starts its collective sequence from slot 0. Only call with no rank
  /// threads running.
  void reset_transient();

  /// Diagnostic for a rank whose blocking receive exceeded the watchdog
  /// timeout: names the stuck receive and dumps every rank's last-known
  /// collective.
  std::string deadlock_report(int global_rank, std::uint64_t context, int src,
                              int tag) const;

 private:
  // One collective operation some ranks have entered but not all.
  struct InflightOp {
    CollectiveDesc desc;
    int first_comm_rank;  // who registered the slot (for diagnostics)
    int arrived;          // ranks that have entered so far
  };
  // Per-communicator-context rendezvous state. Ranks of a communicator each
  // execute the same ordered sequence of collectives, so the k-th entry of
  // every rank must land in the k-th slot; slots retire once all ranks of
  // the context have arrived.
  struct ContextState {
    std::uint64_t retired = 0;            // fully-matched ops, dropped
    std::deque<InflightOp> inflight;      // ops entered by a proper subset
    std::vector<std::uint64_t> next_seq;  // per comm rank: next op index
  };

  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, ContextState> contexts_;
  std::vector<std::string> last_collective_;  // per global rank
  std::vector<std::string> last_p2p_;         // per global rank
  // Per global rank: token -> description of in-flight nonblocking ops.
  // std::map keeps initiation order (tokens are issued monotonically).
  std::vector<std::map<std::uint64_t, std::string>> nb_inflight_;
  std::uint64_t next_nb_token_ = 1;
  std::uint64_t cancelled_ = 0;  // nb ops abandoned during unwind
  std::atomic<std::chrono::milliseconds::rep> timeout_ms_;
  std::atomic<int> timeout_scale_{1};
  std::atomic<bool> explicit_timeout_{false};
  std::atomic<bool> local_only_{false};
};

}  // namespace mbd::comm
