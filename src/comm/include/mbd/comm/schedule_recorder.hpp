// Schedule recording: the raw material of the static schedule analyzer.
//
// When a World has recording enabled, every transport-level event lands in a
// per-rank, program-ordered log: message sends (at deposit), message receives
// (at consumption — for nonblocking collectives that is inside test()/wait(),
// so the log *is* the post→wait ordering), collective entries (the same
// CollectiveDesc the runtime validator rendezvous-matches, but kept instead
// of discarded), nonblocking handle lifetimes, and engine-step boundaries.
//
// The recording is the comm layer's half of the contract with
// mbd/analysis: this header defines only the event model and the log; all
// checking (cross-rank matching, deadlock simulation, handle-lifetime and
// traffic verification) lives in src/analysis. Like Trace and Validator, the
// recording is allocated strictly before rank threads exist and each rank
// appends only to its own log, so recording needs no synchronization beyond
// the World join.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mbd/comm/stats.hpp"
#include "mbd/comm/validator.hpp"

namespace mbd::comm {

/// What one schedule event is. Send/Recv are transport messages (collective
/// rounds and user point-to-point alike); CollEnter is a collective-entry
/// descriptor; NbPost/NbDone/NbCancel bracket a CollectiveHandle's lifetime;
/// StepEnd is the engine's end-of-iteration marker.
enum class ScheduleEventKind : std::uint8_t {
  Send,
  Recv,
  CollEnter,
  NbPost,
  NbDone,
  NbCancel,
  StepEnd,
};

/// Human-readable name of a ScheduleEventKind value.
std::string_view schedule_event_kind_name(ScheduleEventKind k);

/// One recorded event. Field applicability by kind:
///   Send:      context, peer (global dst), tag, bytes, coll
///   Recv:      context, peer (global src), tag, bytes
///   CollEnter: context, comm_rank, comm_size, desc
///   NbPost:    token, what
///   NbDone / NbCancel: token
///   StepEnd:   token (= engine iteration index)
struct ScheduleEvent {
  ScheduleEventKind kind = ScheduleEventKind::Send;
  std::uint64_t context = 0;
  int peer = -1;
  int tag = 0;
  std::uint64_t bytes = 0;
  Coll coll = Coll::PointToPoint;
  CollectiveDesc desc{};
  int comm_rank = -1;
  int comm_size = 0;
  std::uint64_t token = 0;
  std::string what;

  /// One-line description for diagnostics ("send(to=3, tag=1, bytes=64)").
  std::string describe() const;
};

/// Per-rank event log plus the rank-local token counter for nonblocking
/// handles (rank-local, so issuing needs no atomics).
struct RankScheduleLog {
  std::vector<ScheduleEvent> events;
  std::uint64_t next_nb_token = 1;
};

/// The full recording of one (or more) World::run calls: one program-ordered
/// log per global rank. Plain data — the analysis layer consumes it, and
/// negative tests hand-build it.
struct ScheduleRecording {
  ScheduleRecording() = default;
  explicit ScheduleRecording(int world_size)
      : ranks(static_cast<std::size_t>(world_size)) {}

  std::vector<RankScheduleLog> ranks;

  int size() const { return static_cast<int>(ranks.size()); }
  std::size_t total_events() const {
    std::size_t n = 0;
    for (const auto& r : ranks) n += r.events.size();
    return n;
  }
};

}  // namespace mbd::comm
