// Nonblocking collective handles for the mbd::comm runtime.
//
// Comm::iallreduce / iallgather / iallgatherv / isendrecv return a
// CollectiveHandle immediately after depositing the first round of messages
// into the mailbox fabric; the rest of the message schedule advances inside
// test() (consume only what has already been delivered) and wait() (run the
// schedule to completion, blocking in recv). Because sends are buffered,
// a rank that computes between initiation and wait never stalls its peers:
// every peer can drain this rank's round-k message from its mailbox and post
// round k+1 without a rendezvous — that is what makes comm/compute overlap
// executable on this fabric rather than just priced by the cost model.
//
// Progress semantics (single-threaded ranks, no hidden progress thread):
//  * initiation posts this rank's round-0 send eagerly but consumes nothing —
//    receives only ever happen inside test()/wait(), so their positions in a
//    recorded trace are deterministic program points rather than accidents of
//    host thread scheduling (replay_trace depends on this),
//  * test() is the per-rank progress helper — call it between compute blocks
//    to advance all rounds whose inbound messages have already arrived,
//  * wait() finishes the remaining rounds with blocking receives.
//
// Validator semantics: the initiating call rendezvous-matches a
// CollectiveDesc (with .nonblocking = true, so a blocking/nonblocking
// mismatch across ranks is a named ValidationError, not a hang) and the
// handle is tracked until completion. A handle that is destroyed — or still
// pending when World::run joins — surfaces as a "leaked CollectiveHandle"
// error naming the operation, distinct from a plain recv-stall deadlock.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

namespace mbd::comm {

class Validator;
struct ScheduleRecording;

namespace detail {

/// How far one advance() call may drive a pending operation's schedule.
enum class Drive {
  Post,   ///< post the current round's send only; consume nothing
  Poll,   ///< consume rounds whose inbound messages already arrived
  Block,  ///< run to completion, blocking in recv (watchdog applies)
};

/// State machine for one in-flight nonblocking operation. Concrete ops (ring
/// all-reduce, ring all-gather, pending recv) live in comm.hpp where the
/// Comm definition is available.
struct PendingOp {
  PendingOp() = default;
  PendingOp(const PendingOp&) = delete;
  PendingOp& operator=(const PendingOp&) = delete;
  virtual ~PendingOp() = default;

  /// Advance the message schedule as far as `drive` allows. Returns true
  /// once the operation has completed.
  virtual bool advance(Drive drive) = 0;

  // Completion accounting, filled in by Comm::make_handle when a Validator
  // is attached to the fabric.
  Validator* validator = nullptr;
  int global_rank = -1;
  std::uint64_t nb_token = 0;
  // Schedule-recording hookup, filled in by Comm::make_handle when the World
  // is recording: the NbDone/NbCancel event closing this op's NbPost goes to
  // ranks[rec_rank] with token rec_token.
  ScheduleRecording* recorder = nullptr;
  int rec_rank = -1;
  std::uint64_t rec_token = 0;
  // Profiler flow id linking this op's CollPost span to the CollWait/NbDrain
  // span that completes it (0 when profiling is off). Deterministic: derived
  // from (rank, per-thread counter), not from the validator's global token.
  std::uint64_t obs_flow = 0;
  const char* obs_what = "";  ///< static label for completion spans
};

}  // namespace detail

/// Move-only completion handle for a nonblocking operation. Default state is
/// an already-complete (empty) operation. The buffers passed to the
/// initiating call must stay alive and unmodified until done().
class CollectiveHandle {
 public:
  CollectiveHandle() = default;
  CollectiveHandle(CollectiveHandle&&) noexcept = default;
  CollectiveHandle& operator=(CollectiveHandle&&) noexcept = default;
  CollectiveHandle(const CollectiveHandle&) = delete;
  CollectiveHandle& operator=(const CollectiveHandle&) = delete;
  // Destroying an incomplete handle during exception unwind *cancels* the
  // operation: the validator stops tracking it (the unwind explains the
  // abandonment — e.g. a peer crashed mid-Overlapped-backward and this
  // rank's drain threw PoisonedError) and World::run drains the parked
  // schedule messages after the ranks join instead of reporting a leak.
  // Outside an unwind, destroying an incomplete handle is still a leak and
  // is reported by name at the end of World::run. Never throws.
  ~CollectiveHandle();

  /// True once the operation has completed (empty handles are complete).
  bool done() const { return op_ == nullptr || completed_; }

  /// Advance without blocking: consume any rounds whose messages have
  /// arrived. Returns done(). Safe to call repeatedly.
  bool test();

  /// Run the operation to completion (blocking receives; the validator's
  /// recv watchdog applies). Idempotent.
  void wait();

 private:
  friend class Comm;
  explicit CollectiveHandle(std::unique_ptr<detail::PendingOp> op)
      : op_(std::move(op)) {}

  void finish();  // mark complete + notify the validator

  std::unique_ptr<detail::PendingOp> op_;
  bool completed_ = false;
};

/// Per-rank progress helper: test() every handle once. Returns true when all
/// are done. Call between compute blocks to keep multiple outstanding
/// operations moving.
bool progress_all(std::span<CollectiveHandle> handles);

}  // namespace mbd::comm
