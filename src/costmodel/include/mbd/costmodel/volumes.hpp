// Per-rank traffic volumes of the six distributed trainers, in closed form.
//
// mbd/parallel/validation.hpp predicts each trainer's per-iteration bytes
// *summed over all ranks*; these functions refine that to the exact bytes
// *one* rank sends per iteration, per traffic class. The refinement matters
// because the implemented algorithms are rank-asymmetric: the ring
// all-reduce's uneven ⌊n·b/p⌋ blocks and the ring all-gatherv's uneven
// origin blocks give different ranks different send volumes, even though
// the totals stay closed form.
//
// These are the reference the static schedule analyzer (mbd/analysis)
// compares extracted schedules against byte-for-byte: analyzer-summed Send
// events per rank per iteration must equal trainer_rank_volume exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "mbd/nn/layer_spec.hpp"

namespace mbd::costmodel {

/// Which distributed trainer a volume prediction describes.
enum class TrainerKind {
  BatchParallel,
  ModelParallel,
  Integrated15D,
  DomainParallel,
  Hybrid,
  MixedGrid,
  Pipeline,
};

/// Stable lowercase name ("batch", "model", "integrated", "domain",
/// "hybrid", "mixed", "pipeline") used in reports and CLI arguments.
std::string_view trainer_kind_name(TrainerKind k);

/// Bytes one rank sends per SGD iteration, by traffic class.
struct RankVolume {
  std::uint64_t allreduce_bytes = 0;
  std::uint64_t allgather_bytes = 0;
  std::uint64_t p2p_bytes = 0;  ///< halo exchanges

  std::uint64_t total() const {
    return allreduce_bytes + allgather_bytes + p2p_bytes;
  }
  RankVolume& operator+=(const RankVolume& o) {
    allreduce_bytes += o.allreduce_bytes;
    allgather_bytes += o.allgather_bytes;
    p2p_bytes += o.p2p_bytes;
    return *this;
  }
};

/// --- exact per-rank send words of the implemented algorithms --------------

/// Words sent by each rank of the Bruck all-gather of p equal blocks of
/// `block_words` (rank-symmetric): Σ_{k=1,2,4,…<p} min(k, p−k)·block_words.
std::uint64_t allgather_bruck_send_words(int p, std::uint64_t block_words);

/// Words rank `rank` sends in the ring all-gatherv of per-origin blocks
/// `block_words` (step s forwards the block that originated at rank−s):
/// Σ_{s=0..p−2} block_words[(rank−s) mod p].
std::uint64_t allgather_ringv_send_words(
    const std::vector<std::uint64_t>& block_words, int rank);

/// Words rank `rank` sends in the ring all-reduce of an n-word vector
/// (uneven ⌊n·b/p⌋ partition; reduce-scatter + all-gather phases).
std::uint64_t allreduce_ring_send_words(int p, std::size_t n, int rank);

/// --- per-trainer closed forms ---------------------------------------------

/// Exact bytes rank `rank` (global, row-major on the Pr×Pc grid: row =
/// rank/pc, col = rank%pc) sends per iteration when training `specs` with
/// the given trainer. Pure trainers (batch/model/domain) run on p = pr·pc
/// ranks and ignore the grid shape. Mirrors mbd/parallel exactly: FC
/// all-gathers use Bruck when the row count divides evenly and the ring
/// all-gatherv otherwise, conv stacks halo-exchange and all-reduce per
/// layer, and the mixed grid pays the Eq. 6 redistribution all-gatherv.
/// Setup traffic (communicator splits, final parameter assembly) and the
/// loss reduction are excluded, matching validation.hpp's conventions.
///
/// The 1F1B pipeline trainer runs on p = pr·pc ranks as a linear chain of
/// layer groups (MLP only). Its per-iteration point-to-point volume is
/// independent of the microbatch count — the microbatch column blocks of B
/// sum back to B — so rank k sends exactly
///   4·B·(d_boundary(k)·[k < p−1] + d_boundary(k−1)·[k > 0])
/// bytes, where d_boundary(k) is the output width of rank k's last owned
/// layer; no collective moves a byte.
RankVolume trainer_rank_volume(TrainerKind kind,
                               const std::vector<nn::LayerSpec>& specs,
                               std::size_t batch, int pr, int pc, int rank);

}  // namespace mbd::costmodel
