// Online batch-size choice for the serving gateway (mbd/serve/gateway.hpp).
//
// Fig. 4's observation — per-image time falls steeply with batch size while
// BLAS-3 utilization ramps, then flattens — applies unchanged to inference:
// batching single-sample requests amortizes the per-forward collective
// latency (the α terms) and the GEMM's n-dimension inefficiency, at the cost
// of per-request queueing delay. The gateway measures its own latency-vs-
// batch curve with a short self-bench at startup and hands the samples here;
// the choice reuses the same ComputeCurve log-log interpolation machinery
// the Fig. 4 simulations run on (with images_per_epoch = 1 the curve *is*
// the measured batch-latency function).
#pragma once

#include <cstddef>
#include <vector>

namespace mbd::costmodel {

/// One measured point of the serving latency curve: a full pipelined forward
/// pass of `batch` samples took `seconds`.
struct LatencyPoint {
  double batch = 1.0;
  double seconds = 0.0;
};

/// The gateway's operating point: run forwards of `batch` samples, each
/// expected to take `latency_s`, for `throughput` samples/second.
struct BatchChoice {
  std::size_t batch = 1;
  double latency_s = 0.0;
  double throughput = 0.0;
};

/// Pick the serving batch size from measured (batch, latency) samples:
/// maximize batch/latency(batch) over integer batches in [1, max_batch],
/// interpolating between samples on the log-log curve, subject to
/// latency(batch) <= latency_budget_s (0 = unconstrained). Ties prefer the
/// smaller batch (less queueing delay for the same throughput). Points need
/// not be sorted; duplicate batches keep the fastest sample. When no batch
/// meets the budget the choice degrades to batch = 1 — serving stays up and
/// the admission controller does the shedding.
BatchChoice pick_serving_batch(std::vector<LatencyPoint> points,
                               std::size_t max_batch,
                               double latency_budget_s = 0.0);

}  // namespace mbd::costmodel
