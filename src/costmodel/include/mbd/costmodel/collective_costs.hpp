// α–β costs of the collectives, exactly as the paper charges them.
//
// The paper's formulas (following Thakur et al. for Bruck all-gather and the
// ring all-reduce) write every collective's latency as α⌈log₂ P⌉. For the
// ring all-reduce the *algorithm's* latency is really 2(P−1)α; the paper's
// "factor of 2 is merely due to the all-reduce algorithm" keeps the log term.
// LatencyMode::PaperLog reproduces the paper's accounting (default for all
// figure benches); LatencyMode::AlgorithmExact charges the true ring latency
// and is exposed as an ablation.
#pragma once

#include <cstddef>

#include "mbd/costmodel/machine.hpp"

namespace mbd::costmodel {

enum class LatencyMode {
  PaperLog,        ///< α⌈log₂P⌉ everywhere (paper Eqs. 3, 4, 7, 8, 9)
  AlgorithmExact,  ///< ring all-reduce / all-gather pay (P−1)α per phase
};

/// Latency + bandwidth components of one communication phase, in seconds.
struct CostBreakdown {
  double latency = 0.0;
  double bandwidth = 0.0;

  double total() const { return latency + bandwidth; }
  CostBreakdown& operator+=(const CostBreakdown& o) {
    latency += o.latency;
    bandwidth += o.bandwidth;
    return *this;
  }
  friend CostBreakdown operator+(CostBreakdown a, const CostBreakdown& b) {
    a += b;
    return a;
  }
  CostBreakdown scaled(double f) const { return {latency * f, bandwidth * f}; }
};

/// ⌈log₂ p⌉ with ⌈log₂ 1⌉ = 0.
int ceil_log2(std::size_t p);

/// All-gather of `words` total result words over `p` processes
/// (Bruck: α⌈log p⌉ + β·(p−1)/p·words).
CostBreakdown allgather_cost(const MachineModel& m, std::size_t p, double words,
                             LatencyMode mode = LatencyMode::PaperLog);

/// Ring all-reduce of `words` words over `p` processes
/// (paper: 2(α⌈log p⌉ + β·(p−1)/p·words)).
CostBreakdown allreduce_cost(const MachineModel& m, std::size_t p, double words,
                             LatencyMode mode = LatencyMode::PaperLog);

/// One halo exchange of `words` words with a neighbour (α + β·words).
CostBreakdown halo_cost(const MachineModel& m, double words);

/// Fill + drain overhead of a P-stage 1F1B pipeline, per iteration: the
/// (P−1) warmup forward transfers and (P−1) drain backward transfers sit on
/// the critical path (steady-state transfers hide behind the other ranks'
/// microbatch compute), each a point-to-point message of one microbatch's
/// boundary activations — 2(P−1)(α + β·boundary_words_mb).
CostBreakdown pipeline_fill_drain_cost(const MachineModel& m, std::size_t p,
                                       double boundary_words_mb);

/// --- exact word counts of the implemented algorithms ----------------------
/// These mirror what mbd::comm's instrumented collectives actually move, and
/// are used by the validation tests/bench (measured == predicted).

/// Words sent per process by the Bruck all-gather of p blocks of
/// `block_words`.
double allgather_bruck_words_per_rank(std::size_t p, std::size_t block_words);

/// Words sent per process by the ring all-reduce of an n-word vector
/// (exact, accounting for the uneven ⌊n·b/p⌋ block partition; pass the rank
/// because uneven blocks make the count rank-dependent).
double allreduce_ring_words_per_rank(std::size_t p, std::size_t n,
                                     std::size_t rank);

/// Total words sent across all ranks by the ring all-reduce.
double allreduce_ring_words_total(std::size_t p, std::size_t n);

/// Messages sent per process by the ring all-reduce.
std::size_t allreduce_ring_messages_per_rank(std::size_t p);

/// Messages sent per process by the Bruck all-gather.
std::size_t allgather_bruck_messages_per_rank(std::size_t p);

}  // namespace mbd::costmodel
