// Grid and layer-role optimization: "this algorithm automatically selects
// the best configuration to distribute the model and batch parallel work
// given a fixed batch size on P processes" (paper §2.3).
#pragma once

#include <utility>
#include <vector>

#include "mbd/costmodel/strategy.hpp"

namespace mbd::costmodel {

/// All (pr, pc) with pr·pc = p, pr ascending.
std::vector<std::pair<std::size_t, std::size_t>> grid_factorizations(
    std::size_t p);

/// One candidate configuration with its cost.
struct GridOption {
  std::size_t pr = 1, pc = 1;
  StrategyCost cost;
};

/// Evaluate Eq. 8 for every factorization of p (skipping pc > batch, which
/// would leave processes without even one sample); returns all options,
/// cheapest-total first. `overlap` ranks by the Fig. 8 overlapped total.
std::vector<GridOption> enumerate_integrated_grids(
    const std::vector<nn::LayerSpec>& layers, std::size_t batch, std::size_t p,
    const MachineModel& m, GridMode mode = GridMode::Uniform,
    SimOptions opts = {}, bool overlap = false);

/// Cheapest Eq. 8 grid.
GridOption best_integrated_grid(const std::vector<nn::LayerSpec>& layers,
                                std::size_t batch, std::size_t p,
                                const MachineModel& m,
                                GridMode mode = GridMode::Uniform,
                                SimOptions opts = {}, bool overlap = false);

/// Full Eq. 9 plan: grid plus per-layer Model/Domain roles.
struct FullPlan {
  std::size_t pr = 1, pc = 1;
  std::vector<LayerRole> roles;
  StrategyCost cost;
};

/// Search all factorizations with pc ≤ batch; for each, pick per-layer roles
/// with choose_roles() and keep the cheapest total. This is the planner that
/// extends scaling beyond P = B (Fig. 10).
FullPlan best_full_plan(const std::vector<nn::LayerSpec>& layers,
                        std::size_t batch, std::size_t p,
                        const MachineModel& m, SimOptions opts = {});

}  // namespace mbd::costmodel
