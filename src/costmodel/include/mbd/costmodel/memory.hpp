// Per-process memory model (paper §4).
//
// "Solutions that exploit pure data parallelism often replicate the whole
// model in each node. By contrast, the 1.5D matrix-multiplication algorithms
// used by our integrated parallel approach cut down the model replication
// cost by a factor of pr, at the cost of an increase in data replication by
// a factor of pc. Like our communication costs, our memory costs are simply
// a linear combination of the memory costs of these two extremes."
//
// 2D algorithms are memory-optimal (1/P of every matrix, no replication) —
// the one advantage §4 concedes to SUMMA.
#pragma once

#include <cstddef>
#include <vector>

#include "mbd/nn/layer_spec.hpp"

namespace mbd::costmodel {

/// Per-process memory footprint, in words (float32 elements).
struct MemoryFootprint {
  double weights = 0.0;      ///< model parameters held locally
  double activations = 0.0;  ///< forward activations (incl. input) held locally
  double gradients = 0.0;    ///< ∆W buffers held locally

  double total() const { return weights + activations + gradients; }
};

/// 1.5D footprint on a Pr × Pc grid: each process holds 1/Pr of every W (and
/// ∆W) and B/Pc columns of every activation, with activations replicated Pr
/// times and weights replicated Pc times across the machine.
/// pr = 1 is the pure-batch extreme; pc = 1 the pure-model extreme.
MemoryFootprint memory_15d(const std::vector<nn::LayerSpec>& layers,
                           std::size_t batch, std::size_t pr, std::size_t pc);

/// Memory-optimal 2D reference: 1/P of weights, gradients, and activations.
MemoryFootprint memory_2d_optimal(const std::vector<nn::LayerSpec>& layers,
                                  std::size_t batch, std::size_t p);

/// Machine-wide replication factors of the 1.5D layout relative to one copy:
/// weights are stored Pc times, activations Pr times.
struct ReplicationFactors {
  double weights = 1.0;
  double activations = 1.0;
};
ReplicationFactors replication_15d(std::size_t pr, std::size_t pc);

}  // namespace mbd::costmodel
