// Two-level (intra-node / inter-node) network extension.
//
// The paper's Limitations section assumes a flat network: "we assume that
// all the compute nodes are connected and thus do not consider the topology
// of the interconnect ... the effects of this can be approximated by
// adjusting the latency and bandwidth terms accordingly." This module makes
// that adjustment concrete with the standard two-level decomposition:
// S ranks per node with fast (α_intra, β_intra) links, nodes joined by
// slower (α_inter, β_inter) links, and hierarchical collectives
// (intra reduce-scatter → inter all-reduce → intra all-gather).
//
// Everything here is an extension beyond the paper's evaluation; the flat
// Table 1 model remains the default everywhere.
#pragma once

#include "mbd/costmodel/collective_costs.hpp"
#include "mbd/costmodel/strategy.hpp"

namespace mbd::costmodel {

/// Two-level machine description.
struct HierarchicalMachine {
  std::size_t node_size = 1;  ///< ranks per node (S)
  MachineModel intra;         ///< links within a node
  MachineModel inter;         ///< links between nodes

  /// A Cori-like system: Table 1's 2 µs / 6 GB/s between nodes and a 10×
  /// faster shared-memory level inside 8-rank nodes.
  static HierarchicalMachine cori_like(std::size_t node_size = 8);

  /// Degenerate: both levels equal to `m` — hierarchical costs then reduce
  /// to (at most) the flat costs.
  static HierarchicalMachine flat(const MachineModel& m);
};

/// Hierarchical all-reduce of `words` over `p` ranks packed S-per-node:
/// intra-node reduce-scatter, inter-node all-reduce of the 1/S shard over
/// the p/S node leaders, intra-node all-gather. Partial nodes (p < S or
/// p % S != 0) fall back to the flat inter-level cost.
CostBreakdown hierarchical_allreduce_cost(const HierarchicalMachine& hm,
                                          std::size_t p, double words,
                                          LatencyMode mode = LatencyMode::PaperLog);

/// Hierarchical all-gather of `words` total over `p` ranks: inter-node
/// all-gather of node shards between leaders, then intra-node broadcastless
/// all-gather (each leader's node re-gathers the full buffer locally).
CostBreakdown hierarchical_allgather_cost(const HierarchicalMachine& hm,
                                          std::size_t p, double words,
                                          LatencyMode mode = LatencyMode::PaperLog);

/// Eq. 8 with hierarchical collectives, assuming the natural placement: the
/// Pc (batch) groups are packed within nodes first, so the frequent ∆W
/// all-reduces ride the fast intra links when Pc ≤ S.
StrategyCost integrated_cost_hierarchical(
    const std::vector<nn::LayerSpec>& layers, std::size_t batch,
    std::size_t pr, std::size_t pc, const HierarchicalMachine& hm,
    GridMode mode = GridMode::Uniform, SimOptions opts = {});

}  // namespace mbd::costmodel
