// 2D SUMMA communication-volume models for the §4 discussion.
//
// The paper argues its 1.5D algorithm is never strictly beaten by 2D SUMMA
// variants in communication volume: stationary-A (best 2D fit for Y = W·X)
// moves 2·B·d/pr + B·d/pc words per process versus the 1.5D algorithm's
// B·d/pc, and when |W| < B·d every 2D variant must move two matrices where
// 1.5D moves only the smaller one. These formulas follow §4's simplifying
// assumptions (d_i = d_{i-1} = d, (p−1)/p ≈ 1).
#pragma once

#include <cstddef>
#include <string_view>

namespace mbd::costmodel {

enum class SummaVariant {
  StationaryA,  ///< W stays put; X and Y move
  StationaryB,  ///< X stays put; W and Y move
  StationaryC,  ///< Y stays put; W and X move
};

std::string_view summa_variant_name(SummaVariant v);

/// Per-process words moved by a 2D SUMMA variant for Y = W·X with
/// W: d×d, X: d×B on a pr × pc grid.
double summa_words_per_process(SummaVariant v, double d, double batch,
                               std::size_t pr, std::size_t pc);

/// Per-process words moved by the paper's 1.5D algorithm for the same
/// multiply (the forward all-gather): B·d/pc.
double words_15d_forward(double d, double batch, std::size_t pc);

/// Words of the *smaller* operand — the quantity §4 shows 1.5D communicates
/// exclusively: min(|W|, |X|) = min(d², d·B).
double smaller_operand_words(double d, double batch);

}  // namespace mbd::costmodel
