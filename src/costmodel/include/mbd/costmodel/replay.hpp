// Trace-driven replay: simulate the wall-clock of a recorded execution
// under an α–β machine model.
//
// The closed-form costs (strategy.hpp) charge each collective its textbook
// complexity; replay instead walks the *actual* per-rank event schedule a
// run produced (mbd::comm tracing) and advances per-rank clocks:
//
//   Send    — the sender is busy α + β·bytes, after which the message is
//             available to the receiver (store-and-forward, LogGP-flavoured;
//             the buffered runtime has no rendezvous, so sends never block);
//   Recv    — the receiver waits until max(own clock, message availability),
//             then pays α for the matching overhead;
//   Compute — the rank is busy for the annotated seconds.
//
// Under store-and-forward every byte consumes endpoint busy-time, so two
// schedules with the same events always replay to the same busy totals and
// comm/compute overlap is invisible — only waits can differ. The in-flight
// variant (ReplayOptions::inflight_transfer) instead charges the sender only
// the α injection overhead and lets β·bytes elapse on the wire: a receiver
// that computes past the arrival hides the transfer completely, which is
// precisely the DMA-style transport the paper's overlap factor f assumes.
// Use it to measure how much transfer a nonblocking schedule actually hides.
//
// The makespan therefore includes serialization chains, load imbalance, and
// dependency stalls that per-collective formulas cannot express, while
// using exactly the same α and β. Ring pipelines replay to their exact-
// latency cost (tested), validating LatencyMode::AlgorithmExact from a
// completely independent direction.
#pragma once

#include <vector>

#include "mbd/comm/trace.hpp"
#include "mbd/costmodel/machine.hpp"

namespace mbd::costmodel {

/// Result of replaying one trace.
struct ReplayResult {
  std::vector<double> rank_finish;  ///< per-rank completion time (s)
  double makespan = 0.0;            ///< max over ranks
  double total_compute = 0.0;       ///< Σ annotated compute over all ranks
  double total_send_busy = 0.0;     ///< Σ α + β·bytes over all sends
  /// Σ time ranks spent blocked in Recv waiting for data.
  double total_recv_wait = 0.0;
};

/// Transport semantics for replay.
struct ReplayOptions {
  /// false (default): store-and-forward — the sender is busy α + β·bytes and
  /// the message is available when its send completes. true: in-flight (DMA)
  /// transfer — the sender is busy only α; β·bytes then elapses on the wire,
  /// so compute scheduled between initiation and completion hides it.
  bool inflight_transfer = false;
};

/// Replay `trace` under machine `m`. Throws mbd::Error if the trace is
/// inconsistent (a Recv whose Send never appears — cannot happen for traces
/// recorded from a completed run).
ReplayResult replay_trace(const comm::Trace& trace, const MachineModel& m,
                          ReplayOptions opts = {});

}  // namespace mbd::costmodel
