// Per-iteration cost models of the parallelization strategies.
//
// Implements the paper's communication complexities exactly:
//   Eq. 3 — pure model parallelism
//   Eq. 4 — pure batch parallelism
//   Eq. 5 — model-vs-batch communication-volume crossover
//   Eq. 6 — batch→model redistribution
//   Eq. 7 — pure domain parallelism
//   Eq. 8 — integrated model+batch (1.5D, Pr × Pc grid)
//   Eq. 9 — full model+batch+domain integration (per-layer LM/LD lists)
// plus the empirical compute-time term (Fig. 4 curve) and the
// communication/backprop overlap model of Fig. 8.
//
// All costs are *per SGD iteration*; multiply by ⌈N/B⌉ for an epoch
// (epoch_seconds helper).
#pragma once

#include <string>
#include <vector>

#include "mbd/costmodel/collective_costs.hpp"
#include "mbd/nn/layer_spec.hpp"

namespace mbd::costmodel {

/// Role of the Pr grid dimension for one layer in the full integration:
/// Model  — layer is in LM (weights row-partitioned over Pr)
/// Domain — layer is in LD (each sample spatially partitioned over Pr)
enum class LayerRole { Model, Domain };

/// Process-grid policy for the Eq. 8 simulations.
enum class GridMode {
  Uniform,            ///< same Pr × Pc grid for every layer (Fig. 6)
  BatchParallelConv,  ///< Pr=1 for conv layers, Pr × Pc for FC only (Fig. 7)
};

/// Simulation knobs.
struct SimOptions {
  LatencyMode latency = LatencyMode::PaperLog;
};

/// Communication cost of one layer, split by phase.
struct LayerCost {
  std::string name;
  CostBreakdown ag_forward;  ///< all-gather of Y over the Pr groups
  CostBreakdown ar_dx;       ///< all-reduce of ∆X over the Pr groups
  CostBreakdown ar_dw;       ///< all-reduce of ∆W over the batch groups
  CostBreakdown halo;        ///< domain halo exchange (forward + backward)

  CostBreakdown comm() const { return ag_forward + ar_dx + ar_dw + halo; }
};

/// Full per-iteration cost of a strategy.
struct StrategyCost {
  std::vector<LayerCost> layers;
  double compute = 0.0;  ///< seconds per iteration per process

  CostBreakdown ag_forward() const;
  CostBreakdown ar_dx() const;
  CostBreakdown ar_dw() const;  ///< the "batch-parallel" (cross-hatched) part
  CostBreakdown halo() const;
  double comm() const;
  double total() const { return comm() + compute; }

  /// Fig. 8 overlap model: a fraction of the communication (the two
  /// backprop all-reduces ≈ 2/3) can hide behind backprop compute (≈ 2/3 of
  /// compute). total_overlapped = compute + comm − min(2/3·comm, 2/3·compute).
  double total_overlapped(double overlappable_fraction = 2.0 / 3.0) const;
};

/// --- pure strategies -------------------------------------------------------

/// Eq. 3. `layers` must be the weighted layers only.
StrategyCost model_parallel_cost(const std::vector<nn::LayerSpec>& layers,
                                 std::size_t batch, std::size_t p,
                                 const MachineModel& m, SimOptions opts = {});

/// Eq. 4.
StrategyCost batch_parallel_cost(const std::vector<nn::LayerSpec>& layers,
                                 std::size_t batch, std::size_t p,
                                 const MachineModel& m, SimOptions opts = {});

/// Eq. 7. FC layers are charged a full-input halo (paper §2.4: "the halo
/// exchange region will consist of all of the input activations").
StrategyCost domain_parallel_cost(const std::vector<nn::LayerSpec>& layers,
                                  std::size_t batch, std::size_t p,
                                  const MachineModel& m, SimOptions opts = {});

/// --- integrated strategies -------------------------------------------------

/// Eq. 8 on a Pr × Pc grid (p = pr·pc).
StrategyCost integrated_cost(const std::vector<nn::LayerSpec>& layers,
                             std::size_t batch, std::size_t pr, std::size_t pc,
                             const MachineModel& m,
                             GridMode mode = GridMode::Uniform,
                             SimOptions opts = {});

/// Eq. 9: per-layer roles for the Pr dimension (`roles[i]` for `layers[i]`).
/// Domain roles are only meaningful for conv layers; FC layers must be Model.
StrategyCost full_integrated_cost(const std::vector<nn::LayerSpec>& layers,
                                  const std::vector<LayerRole>& roles,
                                  std::size_t batch, std::size_t pr,
                                  std::size_t pc, const MachineModel& m,
                                  SimOptions opts = {});

/// Pick per-conv-layer Model vs Domain by comparing each layer's Pr-dimension
/// communication under Eq. 8 vs Eq. 9 (FC layers are always Model).
std::vector<LayerRole> choose_roles(const std::vector<nn::LayerSpec>& layers,
                                    std::size_t batch, std::size_t pr,
                                    std::size_t pc, const MachineModel& m,
                                    SimOptions opts = {});

/// --- crossover & redistribution ---------------------------------------------

/// Eq. 5: communication-volume ratio batch/model for a conv layer,
/// 2|W_i| / (3·B·d_i). Ratio < 1 means model parallelism moves less data.
double batch_over_model_volume_ratio(const nn::LayerSpec& conv,
                                     std::size_t batch);

/// Largest integer batch size for which model parallelism still moves no
/// more data than batch parallelism: ⌊2·kh·kw·X_C / (3·Y_H·Y_W)⌋.
std::size_t model_favorable_batch_limit(const nn::LayerSpec& conv);

/// Eq. 6: cost of redistributing X from a batch to a model distribution.
CostBreakdown redistribution_cost(const MachineModel& m, std::size_t p,
                                  std::size_t batch, std::size_t d);

/// --- aggregation -------------------------------------------------------------

/// Iterations in one epoch: ⌈N/B⌉.
std::size_t iterations_per_epoch(std::size_t images, std::size_t batch);

/// Epoch time = per-iteration total × ⌈N/B⌉ (overlapped variant optional).
double epoch_seconds(const StrategyCost& cost, std::size_t images,
                     std::size_t batch, bool overlap = false);

}  // namespace mbd::costmodel
