// Machine model: the α–β network parameters and the empirical compute-time
// curve that parameterize the paper's simulations (Table 1 and Fig. 4).
#pragma once

#include <cstddef>
#include <vector>

namespace mbd::costmodel {

/// Single-node compute time as a function of local batch size.
///
/// The paper measures one-epoch AlexNet training time on a single Intel KNL
/// with Intel Caffe (Fig. 4): time falls as the batch grows (better BLAS-3
/// utilization, fewer SGD updates), bottoms out at B = 256, then creeps up.
/// The default table below is digitized from Fig. 4's log-scale plot
/// (~10^4.5 s at B=1 down to ~10^3.5 s at B=256); absolute values are
/// approximate but the shape — which is all the downstream simulations
/// consume — follows the figure.
class ComputeCurve {
 public:
  struct Point {
    double batch;          ///< mini-batch size the epoch was run with
    double epoch_seconds;  ///< one-epoch wall time at that batch size
  };

  /// Curve from explicit (batch, epoch time) samples; batches must be
  /// strictly increasing.
  ComputeCurve(std::vector<Point> points, std::size_t images_per_epoch);

  /// The Fig. 4 AlexNet/KNL curve over ImageNet (1.28 M images).
  static ComputeCurve alexnet_knl();

  /// Seconds of compute per image when running with local batch size `b`
  /// (log-log interpolation between table points; clamped at the ends).
  /// Fractional b < 1 (domain-split images) scales the b = 1 value by b,
  /// i.e. assumes perfect strong scaling of the within-image split.
  double seconds_per_image(double b) const;

  /// Per-iteration compute time for a process holding `local_batch` images
  /// and a `model_fraction` (1/Pr) slice of every layer's work.
  double iteration_seconds(double local_batch, double model_fraction) const;

  std::size_t images_per_epoch() const { return images_per_epoch_; }

 private:
  std::vector<Point> points_;
  std::size_t images_per_epoch_;
};

/// Network + compute parameters of the simulated platform.
struct MachineModel {
  double alpha = 2e-6;        ///< latency per message, seconds (Table 1: 2 µs)
  double beta = 1.0 / 6e9;    ///< inverse bandwidth, s/byte (Table 1: 6 GB/s)
  double word_bytes = 4.0;    ///< activations and weights are float32
  ComputeCurve compute = ComputeCurve::alexnet_knl();

  /// Seconds to move one word point-to-point.
  double word_time() const { return beta * word_bytes; }

  /// NERSC Cori KNL parameters from Table 1.
  static MachineModel cori_knl();

  /// A modern accelerator-cluster stand-in: 1 µs latency, 25 GB/s effective
  /// per-link bandwidth, and 12× faster compute than the KNL curve. Used by
  /// the sensitivity bench (the paper's Limitations: interconnect effects
  /// "can be approximated by adjusting the latency and bandwidth terms").
  static MachineModel fast_cluster();

  /// Copy of this model with scaled network parameters.
  MachineModel with_network(double alpha_scale, double beta_scale) const;
};

}  // namespace mbd::costmodel
