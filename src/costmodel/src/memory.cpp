#include "mbd/costmodel/memory.hpp"

#include "mbd/support/check.hpp"

namespace mbd::costmodel {

MemoryFootprint memory_15d(const std::vector<nn::LayerSpec>& layers,
                           std::size_t batch, std::size_t pr, std::size_t pc) {
  MBD_CHECK_GT(pr, 0u);
  MBD_CHECK_GT(pc, 0u);
  MemoryFootprint f;
  const double b_loc = static_cast<double>(batch) / static_cast<double>(pc);
  bool first = true;
  for (const auto& l : layers) {
    f.weights += static_cast<double>(l.weight_count()) / static_cast<double>(pr);
    f.gradients +=
        static_cast<double>(l.weight_count()) / static_cast<double>(pr);
    // Every process materializes the full d_i rows of its B/Pc activation
    // columns (the all-gathered Y of Fig. 5). Count the input once.
    if (first) {
      f.activations += b_loc * static_cast<double>(l.d_in());
      first = false;
    }
    f.activations += b_loc * static_cast<double>(l.d_out());
  }
  return f;
}

MemoryFootprint memory_2d_optimal(const std::vector<nn::LayerSpec>& layers,
                                  std::size_t batch, std::size_t p) {
  MBD_CHECK_GT(p, 0u);
  MemoryFootprint f;
  const double inv_p = 1.0 / static_cast<double>(p);
  bool first = true;
  for (const auto& l : layers) {
    f.weights += static_cast<double>(l.weight_count()) * inv_p;
    f.gradients += static_cast<double>(l.weight_count()) * inv_p;
    if (first) {
      f.activations +=
          static_cast<double>(batch) * static_cast<double>(l.d_in()) * inv_p;
      first = false;
    }
    f.activations +=
        static_cast<double>(batch) * static_cast<double>(l.d_out()) * inv_p;
  }
  return f;
}

ReplicationFactors replication_15d(std::size_t pr, std::size_t pc) {
  return {static_cast<double>(pc), static_cast<double>(pr)};
}

}  // namespace mbd::costmodel
