#include "mbd/costmodel/replay.hpp"

#include <unordered_map>

#include "mbd/support/check.hpp"

namespace mbd::costmodel {

using comm::TraceEvent;

ReplayResult replay_trace(const comm::Trace& trace, const MachineModel& m,
                          ReplayOptions opts) {
  const std::size_t p = trace.ranks.size();
  ReplayResult r;
  r.rank_finish.assign(p, 0.0);
  if (p == 0) return r;

  // Message availability times, filled in as Sends are replayed.
  std::unordered_map<std::uint64_t, double> available;
  std::vector<std::size_t> cursor(p, 0);  // next event per rank

  // Topological sweep: keep advancing any rank whose next event is ready.
  // A Send/Compute is always ready; a Recv is ready once its message's
  // availability is known. Traces from completed runs always make progress.
  bool progressed = true;
  std::size_t remaining = trace.total_events();
  while (remaining > 0) {
    MBD_CHECK_MSG(progressed,
                  "inconsistent trace: a Recv references a Send that never "
                  "occurs");
    progressed = false;
    for (std::size_t rank = 0; rank < p; ++rank) {
      while (cursor[rank] < trace.ranks[rank].size()) {
        const TraceEvent& e = trace.ranks[rank][cursor[rank]];
        double& clock = r.rank_finish[rank];
        if (e.kind == TraceEvent::Kind::Compute) {
          clock += e.seconds;
          r.total_compute += e.seconds;
        } else if (e.kind == TraceEvent::Kind::Send) {
          const double wire = m.beta * static_cast<double>(e.bytes);
          const double busy = opts.inflight_transfer ? m.alpha : m.alpha + wire;
          clock += busy;
          r.total_send_busy += busy;
          // In-flight: the payload is still on the wire after the sender's
          // injection overhead; the receiver can only match it once it lands.
          available[e.msg_id] =
              opts.inflight_transfer ? clock + wire : clock;
        } else {  // Recv
          auto it = available.find(e.msg_id);
          if (it == available.end()) break;  // sender not replayed yet
          const double ready = it->second;
          if (ready > clock) {
            r.total_recv_wait += ready - clock;
            clock = ready;
          }
          clock += m.alpha;  // matching/unpack overhead
          available.erase(it);
        }
        ++cursor[rank];
        --remaining;
        progressed = true;
      }
    }
  }
  for (double t : r.rank_finish) r.makespan = std::max(r.makespan, t);
  return r;
}

}  // namespace mbd::costmodel
