#include "mbd/costmodel/machine.hpp"

#include <cmath>

#include "mbd/support/check.hpp"

namespace mbd::costmodel {

ComputeCurve::ComputeCurve(std::vector<Point> points,
                           std::size_t images_per_epoch)
    : points_(std::move(points)), images_per_epoch_(images_per_epoch) {
  MBD_CHECK(!points_.empty());
  MBD_CHECK_GT(images_per_epoch_, 0u);
  for (std::size_t i = 0; i + 1 < points_.size(); ++i)
    MBD_CHECK_LT(points_[i].batch, points_[i + 1].batch);
  for (const auto& p : points_) {
    MBD_CHECK_GT(p.batch, 0.0);
    MBD_CHECK_GT(p.epoch_seconds, 0.0);
  }
}

ComputeCurve ComputeCurve::alexnet_knl() {
  // Digitized from paper Fig. 4 (log10 axis, minimum at B = 256).
  return ComputeCurve(
      {
          {1, 31623},  {2, 21500},  {4, 14800}, {8, 10500}, {16, 7800},
          {32, 6100},  {64, 5000},  {128, 4200}, {256, 3550}, {512, 3700},
          {1024, 3950}, {2048, 4400},
      },
      /*images_per_epoch=*/1'281'167);
}

double ComputeCurve::seconds_per_image(double b) const {
  MBD_CHECK_GT(b, 0.0);
  const double n = static_cast<double>(images_per_epoch_);
  // Fractional images: perfect strong scaling of the within-image split
  // relative to a whole image at local batch 1.
  if (b < 1.0) return points_.front().epoch_seconds / n;
  if (b <= points_.front().batch)
    return points_.front().epoch_seconds / n;
  if (b >= points_.back().batch) return points_.back().epoch_seconds / n;
  // Log-log linear interpolation between bracketing table entries.
  std::size_t hi = 1;
  while (points_[hi].batch < b) ++hi;
  const auto& a = points_[hi - 1];
  const auto& c = points_[hi];
  const double t = (std::log(b) - std::log(a.batch)) /
                   (std::log(c.batch) - std::log(a.batch));
  const double log_epoch = std::log(a.epoch_seconds) +
                           t * (std::log(c.epoch_seconds) - std::log(a.epoch_seconds));
  return std::exp(log_epoch) / n;
}

double ComputeCurve::iteration_seconds(double local_batch,
                                       double model_fraction) const {
  MBD_CHECK_GT(model_fraction, 0.0);
  MBD_CHECK(model_fraction <= 1.0);
  if (local_batch <= 0.0) return 0.0;
  return seconds_per_image(local_batch) * local_batch * model_fraction;
}

MachineModel MachineModel::cori_knl() { return MachineModel{}; }

MachineModel MachineModel::fast_cluster() {
  MachineModel m;
  m.alpha = 1e-6;
  m.beta = 1.0 / 25e9;
  // 12× faster compute: scale the KNL epoch-time table down uniformly.
  auto base = ComputeCurve::alexnet_knl();
  std::vector<ComputeCurve::Point> pts;
  for (double b : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0,
                   1024.0, 2048.0}) {
    pts.push_back({b, base.seconds_per_image(b) *
                          static_cast<double>(base.images_per_epoch()) /
                          12.0});
  }
  m.compute = ComputeCurve(std::move(pts), base.images_per_epoch());
  return m;
}

MachineModel MachineModel::with_network(double alpha_scale,
                                        double beta_scale) const {
  MBD_CHECK_GT(alpha_scale, 0.0);
  MBD_CHECK_GT(beta_scale, 0.0);
  MachineModel m = *this;
  m.alpha *= alpha_scale;
  m.beta *= beta_scale;
  return m;
}

}  // namespace mbd::costmodel
