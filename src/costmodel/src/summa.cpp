#include "mbd/costmodel/summa.hpp"

#include <algorithm>

#include "mbd/support/check.hpp"

namespace mbd::costmodel {

std::string_view summa_variant_name(SummaVariant v) {
  switch (v) {
    case SummaVariant::StationaryA: return "stationary-A";
    case SummaVariant::StationaryB: return "stationary-B";
    case SummaVariant::StationaryC: return "stationary-C";
  }
  return "unknown";
}

double summa_words_per_process(SummaVariant v, double d, double batch,
                               std::size_t pr, std::size_t pc) {
  MBD_CHECK_GT(pr, 0u);
  MBD_CHECK_GT(pc, 0u);
  const double prd = static_cast<double>(pr);
  const double pcd = static_cast<double>(pc);
  switch (v) {
    case SummaVariant::StationaryA:
      // §4: "it communicates 2·B·d/pr + B·d/pc words".
      return 2.0 * batch * d / prd + batch * d / pcd;
    case SummaVariant::StationaryB:
      // X stays: broadcast W panels (|W|/pc per process) and reduce Y
      // panels (|Y|/pr per process, and Y must also be gathered, 2×).
      return d * d / pcd + 2.0 * batch * d / prd;
    case SummaVariant::StationaryC:
      // Y stays: broadcast W (|W|/pc) and X (|X|/pr) panels.
      return d * d / pcd + batch * d / prd;
  }
  return 0.0;
}

double words_15d_forward(double d, double batch, std::size_t pc) {
  MBD_CHECK_GT(pc, 0u);
  return batch * d / static_cast<double>(pc);
}

double smaller_operand_words(double d, double batch) {
  return std::min(d * d, d * batch);
}

}  // namespace mbd::costmodel
