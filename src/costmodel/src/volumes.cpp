#include "mbd/costmodel/volumes.hpp"

#include <algorithm>

#include "mbd/costmodel/collective_costs.hpp"
#include "mbd/support/check.hpp"

namespace mbd::costmodel {
namespace {

constexpr std::uint64_t kWordBytes = sizeof(float);

// Same block convention as Comm::block_lo / parallel::block_range.
std::uint64_t block_size(std::size_t n, int p, int index) {
  const auto lo = (n * static_cast<std::size_t>(index)) /
                  static_cast<std::size_t>(p);
  const auto hi = (n * static_cast<std::size_t>(index + 1)) /
                  static_cast<std::size_t>(p);
  return hi - lo;
}

// Bytes a rank sends in the FC-layer output all-gather: row blocks of
// d_out over p group members carrying b_loc batch columns each. Bruck when
// p divides d_out (FcStage's dispatch), ring all-gatherv otherwise.
std::uint64_t fc_allgather_bytes(std::size_t d_out, int p, std::size_t b_loc,
                                 int group_rank) {
  if (p <= 1) return 0;
  if (d_out % static_cast<std::size_t>(p) == 0) {
    return allgather_bruck_send_words(p, (d_out / static_cast<std::size_t>(p)) *
                                             b_loc) *
           kWordBytes;
  }
  std::vector<std::uint64_t> blocks(static_cast<std::size_t>(p));
  for (int i = 0; i < p; ++i)
    blocks[static_cast<std::size_t>(i)] = block_size(d_out, p, i) * b_loc;
  return allgather_ringv_send_words(blocks, group_rank) * kWordBytes;
}

// Bytes a rank sends gathering the conv output slabs (detail::gather_slabs):
// height slabs of img_h rows over p members, each slab carrying n_loc
// samples of c channels × w columns. Bruck when p divides img_h.
std::uint64_t slab_allgather_bytes(std::size_t img_h, int p, std::size_t n_loc,
                                   std::size_t c, std::size_t w,
                                   int group_rank) {
  if (p <= 1) return 0;
  if (img_h % static_cast<std::size_t>(p) == 0) {
    return allgather_bruck_send_words(
               p, n_loc * c * (img_h / static_cast<std::size_t>(p)) * w) *
           kWordBytes;
  }
  std::vector<std::uint64_t> blocks(static_cast<std::size_t>(p));
  for (int i = 0; i < p; ++i)
    blocks[static_cast<std::size_t>(i)] = n_loc * c * block_size(img_h, p, i) * w;
  return allgather_ringv_send_words(blocks, group_rank) * kWordBytes;
}

std::uint64_t ring_allreduce_bytes(int p, std::size_t n, int rank) {
  if (p <= 1) return 0;
  return allreduce_ring_send_words(p, n, rank) * kWordBytes;
}

// Bytes a rank sends halo-exchanging one conv layer (forward + backward):
// interior ranks talk to both neighbours, edge ranks to one.
std::uint64_t halo_bytes(int p, int rank, std::size_t n_loc, std::size_t in_c,
                         std::size_t halo, std::size_t in_w) {
  if (halo == 0 || p <= 1) return 0;
  const std::uint64_t neighbours =
      static_cast<std::uint64_t>(rank > 0) +
      static_cast<std::uint64_t>(rank < p - 1);
  return 2 * neighbours * n_loc * in_c * halo * in_w * kWordBytes;
}

RankVolume batch_parallel_volume(const std::vector<nn::LayerSpec>& specs,
                                 int p, int rank) {
  RankVolume v;
  for (const auto& s : specs) {
    if (!s.has_weights()) continue;
    v.allreduce_bytes += ring_allreduce_bytes(p, s.weight_count(), rank);
  }
  return v;
}

RankVolume model_parallel_volume(const std::vector<nn::LayerSpec>& specs,
                                 std::size_t batch, int p, int rank) {
  RankVolume v;
  bool first = true;
  for (const auto& s : specs) {
    MBD_CHECK(s.kind == nn::LayerKind::FullyConnected);
    v.allgather_bytes += fc_allgather_bytes(s.fc_out, p, batch, rank);
    if (!first)
      v.allreduce_bytes += ring_allreduce_bytes(p, s.fc_in * batch, rank);
    first = false;
  }
  return v;
}

RankVolume integrated_15d_volume(const std::vector<nn::LayerSpec>& specs,
                                 std::size_t batch, int pr, int pc, int rank) {
  RankVolume v;
  const int row = rank / pc;
  const int col = rank % pc;
  const std::size_t b_loc = block_size(batch, pc, col);
  bool first = true;
  for (const auto& s : specs) {
    MBD_CHECK(s.kind == nn::LayerKind::FullyConnected);
    v.allgather_bytes += fc_allgather_bytes(s.fc_out, pr, b_loc, row);
    if (!first)
      v.allreduce_bytes += ring_allreduce_bytes(pr, s.fc_in * b_loc, row);
    v.allreduce_bytes += ring_allreduce_bytes(
        pc, block_size(s.fc_out, pr, row) * s.fc_in, col);
    first = false;
  }
  return v;
}

RankVolume domain_parallel_volume(const std::vector<nn::LayerSpec>& specs,
                                  std::size_t batch, int p, int rank) {
  RankVolume v;
  std::size_t img_h = 0;
  const nn::LayerSpec* last_conv = nullptr;
  for (const auto& s : specs) {
    if (s.kind != nn::LayerKind::Conv) continue;
    const auto& g = s.conv;
    if (img_h == 0) img_h = g.in_h;
    last_conv = &s;
    v.p2p_bytes += halo_bytes(p, rank, batch, g.in_c, g.kernel_h / 2, g.in_w);
    v.allreduce_bytes += ring_allreduce_bytes(p, g.weight_count(), rank);
  }
  MBD_CHECK(last_conv != nullptr);
  const auto& g = last_conv->conv;
  v.allgather_bytes +=
      slab_allgather_bytes(img_h, p, batch, g.out_c, g.out_w(), rank);
  return v;
}

RankVolume hybrid_volume(const std::vector<nn::LayerSpec>& specs,
                         std::size_t batch, int pr, int pc, int rank) {
  RankVolume v;
  const int p = pr * pc;
  const int row = rank / pc;
  const int col = rank % pc;
  const std::size_t b_loc = block_size(batch, pc, col);
  std::size_t img_h = 0;
  const nn::LayerSpec* last_conv = nullptr;
  for (const auto& s : specs) {
    if (s.kind == nn::LayerKind::Conv) {
      const auto& g = s.conv;
      if (img_h == 0) img_h = g.in_h;
      last_conv = &s;
      v.p2p_bytes += halo_bytes(pr, row, b_loc, g.in_c, g.kernel_h / 2, g.in_w);
      // Conv ∆W is all-reduced over ALL processes (weights fully replicated).
      v.allreduce_bytes += ring_allreduce_bytes(p, g.weight_count(), rank);
    } else if (s.kind == nn::LayerKind::FullyConnected) {
      v.allgather_bytes += fc_allgather_bytes(s.fc_out, pr, b_loc, row);
      // Every FC layer's ∆X is reduced — the conv stack below needs even
      // the first FC layer's input gradient.
      v.allreduce_bytes += ring_allreduce_bytes(pr, s.fc_in * b_loc, row);
      v.allreduce_bytes += ring_allreduce_bytes(
          pc, block_size(s.fc_out, pr, row) * s.fc_in, col);
    }
  }
  MBD_CHECK(last_conv != nullptr);
  const auto& g = last_conv->conv;
  v.allgather_bytes +=
      slab_allgather_bytes(img_h, pr, b_loc, g.out_c, g.out_w(), row);
  return v;
}

RankVolume pipeline_volume(const std::vector<nn::LayerSpec>& specs,
                           std::size_t batch, int p, int rank) {
  const std::size_t num_layers = specs.size();
  MBD_CHECK_LE(static_cast<std::size_t>(p), num_layers);
  for (const auto& s : specs) MBD_CHECK(s.kind == nn::LayerKind::FullyConnected);
  // Output width of rank k's last owned layer under the canonical block
  // partition of the layer chain — the activation/gradient boundary between
  // ranks k and k+1.
  const auto boundary = [&](int k) {
    const auto hi = (num_layers * static_cast<std::size_t>(k + 1)) /
                    static_cast<std::size_t>(p);
    return specs[hi - 1].fc_out;
  };
  RankVolume v;
  // Forward activations to rank+1 and backward gradients to rank−1, one
  // message per microbatch; the microbatch column blocks of B sum to B, so
  // the per-iteration volume is microbatch-count-independent.
  if (rank < p - 1) v.p2p_bytes += boundary(rank) * batch * kWordBytes;
  if (rank > 0) v.p2p_bytes += boundary(rank - 1) * batch * kWordBytes;
  return v;
}

RankVolume mixed_grid_volume(const std::vector<nn::LayerSpec>& specs,
                             std::size_t batch, int pr, int pc, int rank) {
  RankVolume v;
  const int p = pr * pc;
  const int row = rank / pc;
  const int col = rank % pc;
  const std::size_t b_loc = block_size(batch, pc, col);
  std::size_t d_conv_out = 0;
  for (const auto& s : specs) {
    switch (s.kind) {
      case nn::LayerKind::Conv:
        // Batch-parallel conv phase: full-weight ring all-reduce over all P.
        v.allreduce_bytes += ring_allreduce_bytes(p, s.weight_count(), rank);
        d_conv_out = s.d_out();
        break;
      case nn::LayerKind::Pool:
        d_conv_out = s.d_out();
        break;
      case nn::LayerKind::FullyConnected:
        v.allgather_bytes += fc_allgather_bytes(s.fc_out, pr, b_loc, row);
        v.allreduce_bytes += ring_allreduce_bytes(pr, s.fc_in * b_loc, row);
        v.allreduce_bytes += ring_allreduce_bytes(
            pc, block_size(s.fc_out, pr, row) * s.fc_in, col);
        break;
    }
  }
  MBD_CHECK_GT(d_conv_out, 0u);
  // Eq. 6 redistribution: always the ring all-gatherv (RedistributeStage),
  // over the model group; member m contributes its conv-phase column block
  // (index col·Pr + m of the canonical P-way batch partition).
  if (pr > 1) {
    std::vector<std::uint64_t> blocks(static_cast<std::size_t>(pr));
    for (int m = 0; m < pr; ++m)
      blocks[static_cast<std::size_t>(m)] =
          d_conv_out * block_size(batch, p, col * pr + m);
    v.allgather_bytes += allgather_ringv_send_words(blocks, row) * kWordBytes;
  }
  return v;
}

}  // namespace

std::string_view trainer_kind_name(TrainerKind k) {
  switch (k) {
    case TrainerKind::BatchParallel: return "batch";
    case TrainerKind::ModelParallel: return "model";
    case TrainerKind::Integrated15D: return "integrated";
    case TrainerKind::DomainParallel: return "domain";
    case TrainerKind::Hybrid: return "hybrid";
    case TrainerKind::MixedGrid: return "mixed";
    case TrainerKind::Pipeline: return "pipeline";
  }
  return "?";
}

std::uint64_t allgather_bruck_send_words(int p, std::uint64_t block_words) {
  MBD_CHECK_GT(p, 0);
  std::uint64_t words = 0;
  for (std::uint64_t k = 1; k < static_cast<std::uint64_t>(p); k <<= 1) {
    const std::uint64_t chunk =
        std::min<std::uint64_t>(k, static_cast<std::uint64_t>(p) - k);
    words += chunk * block_words;
  }
  return words;
}

std::uint64_t allgather_ringv_send_words(
    const std::vector<std::uint64_t>& block_words, int rank) {
  const int p = static_cast<int>(block_words.size());
  MBD_CHECK(rank >= 0 && rank < p);
  std::uint64_t words = 0;
  for (int s = 0; s < p - 1; ++s)
    words += block_words[static_cast<std::size_t>((rank - s + p) % p)];
  return words;
}

std::uint64_t allreduce_ring_send_words(int p, std::size_t n, int rank) {
  MBD_CHECK_GT(p, 0);
  MBD_CHECK(rank >= 0 && rank < p);
  // The existing double-valued per-rank count is exact for word counts far
  // below 2^53; round defensively anyway.
  return static_cast<std::uint64_t>(
      allreduce_ring_words_per_rank(static_cast<std::size_t>(p), n,
                                    static_cast<std::size_t>(rank)) +
      0.5);
}

RankVolume trainer_rank_volume(TrainerKind kind,
                               const std::vector<nn::LayerSpec>& specs,
                               std::size_t batch, int pr, int pc, int rank) {
  MBD_CHECK_GT(pr, 0);
  MBD_CHECK_GT(pc, 0);
  const int p = pr * pc;
  MBD_CHECK(rank >= 0 && rank < p);
  switch (kind) {
    case TrainerKind::BatchParallel:
      return batch_parallel_volume(specs, p, rank);
    case TrainerKind::ModelParallel:
      return model_parallel_volume(specs, batch, p, rank);
    case TrainerKind::Integrated15D:
      return integrated_15d_volume(specs, batch, pr, pc, rank);
    case TrainerKind::DomainParallel:
      return domain_parallel_volume(specs, batch, p, rank);
    case TrainerKind::Hybrid:
      return hybrid_volume(specs, batch, pr, pc, rank);
    case TrainerKind::MixedGrid:
      return mixed_grid_volume(specs, batch, pr, pc, rank);
    case TrainerKind::Pipeline:
      return pipeline_volume(specs, batch, p, rank);
  }
  MBD_CHECK(false);
  return {};
}

}  // namespace mbd::costmodel
