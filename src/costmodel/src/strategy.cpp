#include "mbd/costmodel/strategy.hpp"

#include <algorithm>
#include <cmath>

#include "mbd/support/check.hpp"

namespace mbd::costmodel {

using nn::LayerKind;
using nn::LayerSpec;

namespace {

void check_weighted(const std::vector<LayerSpec>& layers) {
  for (const auto& l : layers)
    MBD_CHECK_MSG(l.has_weights(),
                  "cost models take weighted layers only; '"
                      << l.name << "' is a pool layer (use weighted_layers())");
}

/// Eq. 9 halo terms for one conv layer at local batch b_loc: forward halo on
/// the input rows (⌊kh/2⌋ of them, X_W·X_C words each) plus backward halo on
/// the output (⌊kw/2⌋ columns of Y_W·Y_C words). 1×1 convolutions cost
/// nothing, as the paper highlights.
CostBreakdown conv_halo(const MachineModel& m, const LayerSpec& l,
                        double b_loc) {
  MBD_CHECK(l.kind == LayerKind::Conv);
  const auto& g = l.conv;
  CostBreakdown c;
  const std::size_t half_kh = g.kernel_h / 2;
  const std::size_t half_kw = g.kernel_w / 2;
  if (half_kh > 0) {
    c += halo_cost(m, b_loc * static_cast<double>(g.in_w * g.in_c * half_kh));
  }
  if (half_kw > 0) {
    c += halo_cost(
        m, b_loc * static_cast<double>(g.out_w() * g.out_c * half_kw));
  }
  return c;
}

}  // namespace

CostBreakdown StrategyCost::ag_forward() const {
  CostBreakdown c;
  for (const auto& l : layers) c += l.ag_forward;
  return c;
}
CostBreakdown StrategyCost::ar_dx() const {
  CostBreakdown c;
  for (const auto& l : layers) c += l.ar_dx;
  return c;
}
CostBreakdown StrategyCost::ar_dw() const {
  CostBreakdown c;
  for (const auto& l : layers) c += l.ar_dw;
  return c;
}
CostBreakdown StrategyCost::halo() const {
  CostBreakdown c;
  for (const auto& l : layers) c += l.halo;
  return c;
}
double StrategyCost::comm() const {
  return (ag_forward() + ar_dx() + ar_dw() + halo()).total();
}

double StrategyCost::total_overlapped(double overlappable_fraction) const {
  const double c = comm();
  const double overlappable = overlappable_fraction * c;
  const double window = overlappable_fraction * compute;
  return compute + c - std::min(overlappable, window);
}

StrategyCost model_parallel_cost(const std::vector<LayerSpec>& layers,
                                 std::size_t batch, std::size_t p,
                                 const MachineModel& m, SimOptions opts) {
  // Eq. 3 is the Pc = 1 slice of Eq. 8.
  return integrated_cost(layers, batch, /*pr=*/p, /*pc=*/1, m,
                         GridMode::Uniform, opts);
}

StrategyCost batch_parallel_cost(const std::vector<LayerSpec>& layers,
                                 std::size_t batch, std::size_t p,
                                 const MachineModel& m, SimOptions opts) {
  // Eq. 4 is the Pr = 1 slice of Eq. 8.
  return integrated_cost(layers, batch, /*pr=*/1, /*pc=*/p, m,
                         GridMode::Uniform, opts);
}

StrategyCost domain_parallel_cost(const std::vector<LayerSpec>& layers,
                                  std::size_t batch, std::size_t p,
                                  const MachineModel& m, SimOptions opts) {
  check_weighted(layers);
  MBD_CHECK_GT(p, 0u);
  StrategyCost out;
  const double b = static_cast<double>(batch);
  for (const auto& l : layers) {
    LayerCost lc;
    lc.name = l.name;
    // Eq. 7: halo exchanges per conv layer; every process holds the full
    // model, so the gradient all-reduce runs over all P on the whole |W_i|.
    if (l.kind == LayerKind::Conv) {
      lc.halo = conv_halo(m, l, b);
    } else {
      // FC layer under domain decomposition: the "halo" is the entire input
      // activation (paper §2.4) — an all-gather of B·d_in.
      lc.halo = allgather_cost(m, p, b * static_cast<double>(l.d_in()),
                               opts.latency);
    }
    lc.ar_dw =
        allreduce_cost(m, p, static_cast<double>(l.weight_count()), opts.latency);
    out.layers.push_back(lc);
  }
  // Each process computes 1/P of every sample's work at full-model width.
  out.compute = m.compute.iteration_seconds(b, 1.0 / static_cast<double>(p));
  return out;
}

StrategyCost integrated_cost(const std::vector<LayerSpec>& layers,
                             std::size_t batch, std::size_t pr, std::size_t pc,
                             const MachineModel& m, GridMode mode,
                             SimOptions opts) {
  check_weighted(layers);
  MBD_CHECK_GT(pr, 0u);
  MBD_CHECK_GT(pc, 0u);
  StrategyCost out;
  const double b_loc = static_cast<double>(batch) / static_cast<double>(pc);
  const std::size_t p = pr * pc;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const LayerSpec& l = layers[i];
    const bool model_here =
        mode == GridMode::Uniform || l.kind == LayerKind::FullyConnected;
    LayerCost lc;
    lc.name = l.name;
    if (model_here) {
      // Eq. 8: all-gather of Y_i over the Pr group; all-reduce of ∆X over
      // Pr (all layers but the first); all-reduce of ∆W over Pc on a
      // 1/Pr slice of the weights.
      lc.ag_forward = allgather_cost(
          m, pr, b_loc * static_cast<double>(l.d_out()), opts.latency);
      if (i > 0) {
        lc.ar_dx = allreduce_cost(
            m, pr, b_loc * static_cast<double>(l.d_in()), opts.latency);
      }
      lc.ar_dw = allreduce_cost(
          m, pc,
          static_cast<double>(l.weight_count()) / static_cast<double>(pr),
          opts.latency);
    } else {
      // BatchParallelConv (Fig. 7): conv layers run pure batch parallel on
      // all P processes — full weights, ∆W all-reduce over P.
      lc.ar_dw = allreduce_cost(
          m, p, static_cast<double>(l.weight_count()), opts.latency);
    }
    out.layers.push_back(lc);
  }
  out.compute = m.compute.iteration_seconds(b_loc, 1.0 / static_cast<double>(pr));
  return out;
}

StrategyCost full_integrated_cost(const std::vector<LayerSpec>& layers,
                                  const std::vector<LayerRole>& roles,
                                  std::size_t batch, std::size_t pr,
                                  std::size_t pc, const MachineModel& m,
                                  SimOptions opts) {
  check_weighted(layers);
  MBD_CHECK_EQ(roles.size(), layers.size());
  MBD_CHECK_GT(pr, 0u);
  MBD_CHECK_GT(pc, 0u);
  const std::size_t p = pr * pc;
  const double b_loc = static_cast<double>(batch) / static_cast<double>(pc);
  StrategyCost out;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const LayerSpec& l = layers[i];
    LayerCost lc;
    lc.name = l.name;
    if (roles[i] == LayerRole::Model) {
      lc.ag_forward = allgather_cost(
          m, pr, b_loc * static_cast<double>(l.d_out()), opts.latency);
      if (i > 0) {
        lc.ar_dx = allreduce_cost(
            m, pr, b_loc * static_cast<double>(l.d_in()), opts.latency);
      }
      lc.ar_dw = allreduce_cost(
          m, pc,
          static_cast<double>(l.weight_count()) / static_cast<double>(pr),
          opts.latency);
    } else {
      MBD_CHECK_MSG(l.kind == LayerKind::Conv,
                    "Domain role requires a conv layer; '" << l.name
                                                           << "' is not one");
      // Eq. 9 LD terms: halo at local batch B/Pc; full-weight all-reduce
      // over all P processes.
      lc.halo = conv_halo(m, l, b_loc);
      lc.ar_dw = allreduce_cost(
          m, p, static_cast<double>(l.weight_count()), opts.latency);
    }
    out.layers.push_back(lc);
  }
  out.compute = m.compute.iteration_seconds(b_loc, 1.0 / static_cast<double>(pr));
  return out;
}

std::vector<LayerRole> choose_roles(const std::vector<LayerSpec>& layers,
                                    std::size_t batch, std::size_t pr,
                                    std::size_t pc, const MachineModel& m,
                                    SimOptions opts) {
  check_weighted(layers);
  std::vector<LayerRole> roles(layers.size(), LayerRole::Model);
  if (pr <= 1) return roles;  // no Pr dimension — nothing to decide
  for (std::size_t i = 0; i < layers.size(); ++i) {
    if (layers[i].kind != LayerKind::Conv) continue;
    // Compare the layer's Pr-dimension communication under each role.
    std::vector<LayerSpec> one{layers[i]};
    const auto as_model = full_integrated_cost(one, {LayerRole::Model}, batch,
                                               pr, pc, m, opts);
    const auto as_domain = full_integrated_cost(one, {LayerRole::Domain},
                                                batch, pr, pc, m, opts);
    if (as_domain.comm() < as_model.comm()) roles[i] = LayerRole::Domain;
  }
  return roles;
}

double batch_over_model_volume_ratio(const nn::LayerSpec& conv,
                                     std::size_t batch) {
  MBD_CHECK(conv.kind == LayerKind::Conv);
  return 2.0 * static_cast<double>(conv.weight_count()) /
         (3.0 * static_cast<double>(batch) * static_cast<double>(conv.d_out()));
}

std::size_t model_favorable_batch_limit(const nn::LayerSpec& conv) {
  MBD_CHECK(conv.kind == LayerKind::Conv);
  const auto& g = conv.conv;
  const double limit = 2.0 * static_cast<double>(g.kernel_h * g.kernel_w *
                                                 g.in_c) /
                       (3.0 * static_cast<double>(g.out_h() * g.out_w()));
  return static_cast<std::size_t>(std::floor(limit));
}

CostBreakdown redistribution_cost(const MachineModel& m, std::size_t p,
                                  std::size_t batch, std::size_t d) {
  return allgather_cost(m, p,
                        static_cast<double>(batch) * static_cast<double>(d));
}

std::size_t iterations_per_epoch(std::size_t images, std::size_t batch) {
  MBD_CHECK_GT(batch, 0u);
  return (images + batch - 1) / batch;
}

double epoch_seconds(const StrategyCost& cost, std::size_t images,
                     std::size_t batch, bool overlap) {
  const double iter = overlap ? cost.total_overlapped() : cost.total();
  return iter * static_cast<double>(iterations_per_epoch(images, batch));
}

}  // namespace mbd::costmodel
