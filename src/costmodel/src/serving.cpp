#include "mbd/costmodel/serving.hpp"

#include <algorithm>
#include <cmath>

#include "mbd/costmodel/machine.hpp"
#include "mbd/support/check.hpp"

namespace mbd::costmodel {

BatchChoice pick_serving_batch(std::vector<LatencyPoint> points,
                               std::size_t max_batch,
                               double latency_budget_s) {
  MBD_CHECK_MSG(!points.empty(), "pick_serving_batch needs measurements");
  MBD_CHECK_GT(max_batch, 0u);

  std::sort(points.begin(), points.end(),
            [](const LatencyPoint& a, const LatencyPoint& b) {
              if (a.batch != b.batch) return a.batch < b.batch;
              return a.seconds < b.seconds;
            });
  // ComputeCurve wants strictly increasing batches and positive times;
  // keep the fastest sample per batch and floor timer-resolution zeros.
  std::vector<ComputeCurve::Point> curve_points;
  for (const LatencyPoint& p : points) {
    MBD_CHECK_GT(p.batch, 0.0);
    if (!curve_points.empty() && curve_points.back().batch == p.batch)
      continue;
    curve_points.push_back({p.batch, std::max(p.seconds, 1e-9)});
  }
  const ComputeCurve curve(std::move(curve_points), /*images_per_epoch=*/1);

  BatchChoice best;
  best.latency_s = curve.seconds_per_image(1.0);
  best.throughput = 1.0 / best.latency_s;
  for (std::size_t b = 1; b <= max_batch; ++b) {
    const double latency = curve.seconds_per_image(static_cast<double>(b));
    if (latency_budget_s > 0.0 && latency > latency_budget_s) continue;
    const double throughput = static_cast<double>(b) / latency;
    // Relative epsilon so ties (flat throughput curves) keep the smaller
    // batch despite log-log interpolation roundoff.
    if (throughput > best.throughput * (1.0 + 1e-6)) {
      best = {b, latency, throughput};
    }
  }
  return best;
}

}  // namespace mbd::costmodel
