#include "mbd/costmodel/hierarchy.hpp"

#include "mbd/support/check.hpp"

namespace mbd::costmodel {

HierarchicalMachine HierarchicalMachine::cori_like(std::size_t node_size) {
  HierarchicalMachine hm;
  hm.node_size = node_size;
  hm.inter = MachineModel::cori_knl();
  hm.intra = MachineModel::cori_knl();
  hm.intra.alpha = 0.2e-6;       // shared-memory latency
  hm.intra.beta = 1.0 / 60e9;    // 10× the inter-node bandwidth
  return hm;
}

HierarchicalMachine HierarchicalMachine::flat(const MachineModel& m) {
  return {1, m, m};
}

CostBreakdown hierarchical_allreduce_cost(const HierarchicalMachine& hm,
                                          std::size_t p, double words,
                                          LatencyMode mode) {
  if (p <= 1) return {};
  const std::size_t s = hm.node_size;
  if (s <= 1 || p <= s || p % s != 0) {
    // No exploitable hierarchy at this size: the whole group rides the
    // slower level (or the faster one if it fits inside a node).
    const MachineModel& m = p <= s ? hm.intra : hm.inter;
    return allreduce_cost(m, p, words, mode);
  }
  const std::size_t nodes = p / s;
  CostBreakdown c;
  // Intra-node reduce-scatter: half an all-reduce.
  c.latency += hm.intra.alpha * ceil_log2(s);
  c.bandwidth += hm.intra.word_time() * words *
                 (static_cast<double>(s - 1) / static_cast<double>(s));
  // Inter-node all-reduce on the 1/S shard between node leaders.
  c += allreduce_cost(hm.inter, nodes, words / static_cast<double>(s), mode);
  // Intra-node all-gather of the reduced shards.
  c += allgather_cost(hm.intra, s, words, mode);
  return c;
}

CostBreakdown hierarchical_allgather_cost(const HierarchicalMachine& hm,
                                          std::size_t p, double words,
                                          LatencyMode mode) {
  if (p <= 1) return {};
  const std::size_t s = hm.node_size;
  if (s <= 1 || p <= s || p % s != 0) {
    const MachineModel& m = p <= s ? hm.intra : hm.inter;
    return allgather_cost(m, p, words, mode);
  }
  const std::size_t nodes = p / s;
  const double node_shard = words * static_cast<double>(s) /
                            static_cast<double>(p);
  CostBreakdown c;
  // Gather the node's blocks locally (each node then holds its shard).
  c += allgather_cost(hm.intra, s, node_shard, mode);
  // Exchange node shards between leaders.
  c += allgather_cost(hm.inter, nodes, words, mode);
  // Fan the full buffer out inside each node (binomial broadcast).
  c.latency += hm.intra.alpha * ceil_log2(s);
  c.bandwidth += hm.intra.word_time() * words;
  return c;
}

StrategyCost integrated_cost_hierarchical(
    const std::vector<nn::LayerSpec>& layers, std::size_t batch,
    std::size_t pr, std::size_t pc, const HierarchicalMachine& hm,
    GridMode mode, SimOptions opts) {
  MBD_CHECK_GT(pr, 0u);
  MBD_CHECK_GT(pc, 0u);
  const std::size_t s = hm.node_size;
  // Natural rank placement: rank = i·Pc + j, nodes of S consecutive ranks.
  // Batch (Pc) groups are consecutive ranks → they pack S per node.
  // Model (Pr) groups are strided by Pc → when Pc < S a node still holds
  // S/Pc members of each Pr group; when Pc ≥ S every Pr-group hop is
  // inter-node.
  const std::size_t s_pr = (pc < s && s % pc == 0) ? s / pc : 1;
  const HierarchicalMachine hm_pr{s_pr, hm.intra, hm.inter};

  StrategyCost out;
  const double b_loc = static_cast<double>(batch) / static_cast<double>(pc);
  const std::size_t p = pr * pc;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const nn::LayerSpec& l = layers[i];
    const bool model_here =
        mode == GridMode::Uniform || l.kind == nn::LayerKind::FullyConnected;
    LayerCost lc;
    lc.name = l.name;
    if (model_here) {
      lc.ag_forward = hierarchical_allgather_cost(
          hm_pr, pr, b_loc * static_cast<double>(l.d_out()), opts.latency);
      if (i > 0) {
        lc.ar_dx = hierarchical_allreduce_cost(
            hm_pr, pr, b_loc * static_cast<double>(l.d_in()), opts.latency);
      }
      lc.ar_dw = hierarchical_allreduce_cost(
          hm, pc,
          static_cast<double>(l.weight_count()) / static_cast<double>(pr),
          opts.latency);
    } else {
      lc.ar_dw = hierarchical_allreduce_cost(
          hm, p, static_cast<double>(l.weight_count()), opts.latency);
    }
    out.layers.push_back(lc);
  }
  out.compute =
      hm.inter.compute.iteration_seconds(b_loc, 1.0 / static_cast<double>(pr));
  return out;
}

}  // namespace mbd::costmodel
