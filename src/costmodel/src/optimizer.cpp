#include "mbd/costmodel/optimizer.hpp"

#include <algorithm>

#include "mbd/support/check.hpp"

namespace mbd::costmodel {

std::vector<std::pair<std::size_t, std::size_t>> grid_factorizations(
    std::size_t p) {
  MBD_CHECK_GT(p, 0u);
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (std::size_t pr = 1; pr <= p; ++pr)
    if (p % pr == 0) out.emplace_back(pr, p / pr);
  return out;
}

std::vector<GridOption> enumerate_integrated_grids(
    const std::vector<nn::LayerSpec>& layers, std::size_t batch, std::size_t p,
    const MachineModel& m, GridMode mode, SimOptions opts, bool overlap) {
  std::vector<GridOption> options;
  for (const auto& [pr, pc] : grid_factorizations(p)) {
    if (pc > batch) continue;  // would leave processes with no samples
    GridOption o;
    o.pr = pr;
    o.pc = pc;
    o.cost = integrated_cost(layers, batch, pr, pc, m, mode, opts);
    options.push_back(std::move(o));
  }
  MBD_CHECK_MSG(!options.empty(),
                "no feasible grid: every factorization of p=" << p
                    << " has pc > batch=" << batch);
  std::sort(options.begin(), options.end(),
            [overlap](const GridOption& a, const GridOption& b) {
              const double ta = overlap ? a.cost.total_overlapped() : a.cost.total();
              const double tb = overlap ? b.cost.total_overlapped() : b.cost.total();
              return ta < tb;
            });
  return options;
}

GridOption best_integrated_grid(const std::vector<nn::LayerSpec>& layers,
                                std::size_t batch, std::size_t p,
                                const MachineModel& m, GridMode mode,
                                SimOptions opts, bool overlap) {
  return enumerate_integrated_grids(layers, batch, p, m, mode, opts, overlap)
      .front();
}

FullPlan best_full_plan(const std::vector<nn::LayerSpec>& layers,
                        std::size_t batch, std::size_t p,
                        const MachineModel& m, SimOptions opts) {
  FullPlan best;
  bool have = false;
  for (const auto& [pr, pc] : grid_factorizations(p)) {
    if (pc > batch) continue;
    auto roles = choose_roles(layers, batch, pr, pc, m, opts);
    auto cost = full_integrated_cost(layers, roles, batch, pr, pc, m, opts);
    if (!have || cost.total() < best.cost.total()) {
      best.pr = pr;
      best.pc = pc;
      best.roles = std::move(roles);
      best.cost = std::move(cost);
      have = true;
    }
  }
  MBD_CHECK_MSG(have, "no feasible plan for p=" << p << ", batch=" << batch);
  return best;
}

}  // namespace mbd::costmodel
