#include "mbd/costmodel/collective_costs.hpp"

#include <algorithm>

#include "mbd/support/check.hpp"

namespace mbd::costmodel {

int ceil_log2(std::size_t p) {
  MBD_CHECK_GT(p, 0u);
  int bits = 0;
  std::size_t v = 1;
  while (v < p) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

CostBreakdown allgather_cost(const MachineModel& m, std::size_t p, double words,
                             LatencyMode mode) {
  if (p <= 1) return {};
  (void)mode;  // Bruck's latency is genuinely ⌈log₂p⌉ in both modes.
  CostBreakdown c;
  c.latency = m.alpha * ceil_log2(p);
  c.bandwidth =
      m.word_time() * words * (static_cast<double>(p - 1) / static_cast<double>(p));
  return c;
}

CostBreakdown allreduce_cost(const MachineModel& m, std::size_t p, double words,
                             LatencyMode mode) {
  if (p <= 1) return {};
  CostBreakdown c;
  c.latency = mode == LatencyMode::PaperLog
                  ? 2.0 * m.alpha * ceil_log2(p)
                  : 2.0 * m.alpha * static_cast<double>(p - 1);
  c.bandwidth = 2.0 * m.word_time() * words *
                (static_cast<double>(p - 1) / static_cast<double>(p));
  return c;
}

CostBreakdown halo_cost(const MachineModel& m, double words) {
  return {m.alpha, m.word_time() * words};
}

CostBreakdown pipeline_fill_drain_cost(const MachineModel& m, std::size_t p,
                                       double boundary_words_mb) {
  if (p <= 1) return {};
  const double hops = 2.0 * static_cast<double>(p - 1);
  return {hops * m.alpha, hops * m.word_time() * boundary_words_mb};
}

double allgather_bruck_words_per_rank(std::size_t p, std::size_t block_words) {
  double words = 0.0;
  for (std::size_t k = 1; k < p; k <<= 1)
    words += static_cast<double>(std::min(k, p - k)) *
             static_cast<double>(block_words);
  return words;
}

double allreduce_ring_words_per_rank(std::size_t p, std::size_t n,
                                     std::size_t rank) {
  if (p <= 1) return 0.0;
  auto block_size = [&](std::size_t b) {
    return (n * (b + 1)) / p - (n * b) / p;
  };
  // Matches mbd::comm::Comm::allreduce_ring's schedule exactly: at step s,
  // rank r sends block (r−s) in the reduce-scatter phase and block (r+1−s)
  // in the all-gather phase.
  double words = 0.0;
  for (std::size_t s = 0; s + 1 < p; ++s) {
    const std::size_t send1 = (rank + 2 * p - s) % p;      // reduce-scatter
    const std::size_t send2 = (rank + 2 * p + 1 - s) % p;  // all-gather
    words += static_cast<double>(block_size(send1) + block_size(send2));
  }
  return words;
}

double allreduce_ring_words_total(std::size_t p, std::size_t n) {
  double t = 0.0;
  for (std::size_t r = 0; r < p; ++r)
    t += allreduce_ring_words_per_rank(p, n, r);
  return t;
}

std::size_t allreduce_ring_messages_per_rank(std::size_t p) {
  return p <= 1 ? 0 : 2 * (p - 1);
}

std::size_t allgather_bruck_messages_per_rank(std::size_t p) {
  return static_cast<std::size_t>(ceil_log2(p));
}

}  // namespace mbd::costmodel
