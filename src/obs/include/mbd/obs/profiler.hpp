// Per-rank timeline profiler.
//
// Every instrumented hot path (GEMM macro-kernel, collective post/wait,
// nonblocking drains, layer-engine stage boundaries, checkpoint and fault
// retransmission paths) records typed *spans* into a lock-free per-thread
// buffer. A span carries a deterministic identity — (rank, bind-life,
// per-thread op sequence) — so two runs of the same program produce the
// identical span *structure*; only the nanosecond timestamps differ. That
// determinism is what lets CI diff two profiled runs, and what makes flow
// ids (CollPost → CollWait arrows in the Chrome trace) reproducible.
//
// Gates, in order of cost:
//  * compile time — building with -DMBD_PROFILER=OFF defines
//    MBD_OBS_PROFILER=0 and the MBD_OBS_* macros expand to nothing;
//  * runtime — profiling_enabled() is one relaxed atomic load. Disabled,
//    an instrumentation point costs that single load and nothing else
//    (ScopedSpan does not even read the clock).
//
// Threading model: each OS thread owns one ThreadLog (created on first use,
// retained by the global registry after the thread exits). Only the owning
// thread appends spans — no locks on the hot path; the registry mutex is
// taken only at thread registration and snapshot time. snapshot_timeline()
// must run at a quiescent point (after World::run has joined its rank
// threads): the joins order every rank-thread write before the snapshot.
//
// Rank attribution: World::run calls bind_thread(rank) at rank-thread entry.
// Threads that never bind (bench mains, helpers) report rank -1. Because
// thread *registration* order is scheduler-dependent, logs are keyed and
// sorted by (rank, life) — life counts how many threads have bound that rank
// — never by registration order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#ifndef MBD_OBS_PROFILER
#define MBD_OBS_PROFILER 1
#endif

namespace mbd::obs {

/// Span taxonomy (docs/observability.md). Compute kinds first, then
/// communication, then lifecycle.
enum class SpanKind : std::uint8_t {
  Gemm = 0,    ///< one packed-GEMM driver call (tensor/gemm.cpp)
  Pack,        ///< B-panel packing on the calling thread
  Im2col,      ///< im2col/col2im lowering
  CollPost,    ///< blocking collective, or nonblocking initiation
  CollWait,    ///< CollectiveHandle::wait draining to completion
  NbDrain,     ///< CollectiveHandle::test partial progress
  Checkpoint,  ///< LayerEngine save/restore checkpoint
  FaultRetry,  ///< fault-fabric retransmission flush
  Promotion,   ///< spare promotion: in-place fabric repair
  StageFwd,    ///< one EngineStage::forward call
  StageBwd,    ///< one EngineStage::backward call
  Serve,       ///< serving gateway: enqueue/batch/forward/reply
  kCount
};

/// Human-readable name of a SpanKind ("gemm", "coll_wait", ...).
const char* span_kind_name(SpanKind k);

/// One closed interval on one thread's timeline. `label` must be a string
/// with static storage duration (the buffers never copy it).
struct Span {
  SpanKind kind = SpanKind::Gemm;
  const char* label = "";
  std::uint64_t seq = 0;   ///< per-thread op sequence (deterministic id)
  std::uint64_t flow = 0;  ///< nonzero links CollPost to CollWait/NbDrain
  std::uint64_t t0_ns = 0, t1_ns = 0;  ///< steady-clock interval
  std::uint64_t arg0 = 0, arg1 = 0;    ///< kind-specific (bytes, flops, ...)
};

/// One thread's recorded timeline, as captured by snapshot_timeline().
struct ThreadTimeline {
  int rank = -1;  ///< bound rank, -1 for unbound threads
  int life = 0;   ///< nth thread bound to this rank (0-based); ties broken
                  ///< by registration for unbound threads
  std::vector<Span> spans;
};

/// Snapshot of every thread timeline, sorted by (rank, life). Take it only
/// at quiescent points (no instrumented thread running).
struct TimelineSnapshot {
  std::vector<ThreadTimeline> threads;

  /// Sum of span durations of `kind` across all threads, in seconds.
  double total_seconds(SpanKind kind) const;
};

#if MBD_OBS_PROFILER

/// Runtime gate: one relaxed atomic load. Every instrumentation point checks
/// it first; all other profiler calls are no-ops while disabled.
bool profiling_enabled();

/// Flip the runtime gate. Enable only at quiescent points (it is the caller's
/// ordering — World::run boundaries — that keeps buffers single-writer).
/// Also enabled at startup when the MBD_PROFILE environment variable is set.
void enable_profiling(bool on = true);

/// Attribute the calling thread's timeline to `rank` (called by World::run
/// at rank-thread entry). Assigns the (rank, life) identity used for
/// deterministic ordering. Cheap no-op while profiling is disabled.
void bind_thread(int rank);

/// Next deterministic flow id for the calling thread: encodes (rank, local
/// counter) so CollPost and its matching CollWait/NbDrain agree across runs.
/// Returns 0 (no flow) when profiling is disabled or the thread is unbound.
std::uint64_t next_flow_id();

/// Append one span to the calling thread's buffer (no-op while disabled).
void record_span(SpanKind kind, const char* label, std::uint64_t t0_ns,
                 std::uint64_t t1_ns, std::uint64_t flow = 0,
                 std::uint64_t arg0 = 0, std::uint64_t arg1 = 0);

/// Monotonic nanosecond clock used by all spans.
std::uint64_t now_ns();

/// Copy out every registered timeline (including exited threads'), sorted by
/// (rank, life). Quiescent points only.
TimelineSnapshot snapshot_timeline();

/// Drop all recorded spans and rank-life bookkeeping. Quiescent points only;
/// already-bound live threads keep their (rank, life) identity.
void reset_timeline();

/// RAII span: captures t0 at construction, records at destruction. The
/// enabled check happens once, at construction.
class ScopedSpan {
 public:
  ScopedSpan(SpanKind kind, const char* label, std::uint64_t arg0 = 0,
             std::uint64_t arg1 = 0)
      : on_(profiling_enabled()), kind_(kind), label_(label), arg0_(arg0),
        arg1_(arg1) {
    if (on_) t0_ = now_ns();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (on_) record_span(kind_, label_, t0_, now_ns(), flow_, arg0_, arg1_);
  }

  /// Attach a flow id (CollPost side creates it; wait sides echo it).
  void set_flow(std::uint64_t flow) { flow_ = flow; }
  void set_args(std::uint64_t arg0, std::uint64_t arg1) {
    arg0_ = arg0;
    arg1_ = arg1;
  }
  bool active() const { return on_; }

 private:
  bool on_;
  SpanKind kind_;
  const char* label_;
  std::uint64_t t0_ = 0, flow_ = 0, arg0_, arg1_;
};

#else  // MBD_OBS_PROFILER == 0: compile everything out.

inline bool profiling_enabled() { return false; }
inline void enable_profiling(bool = true) {}
inline void bind_thread(int) {}
inline std::uint64_t next_flow_id() { return 0; }
inline void record_span(SpanKind, const char*, std::uint64_t, std::uint64_t,
                        std::uint64_t = 0, std::uint64_t = 0,
                        std::uint64_t = 0) {}
inline std::uint64_t now_ns() { return 0; }
inline TimelineSnapshot snapshot_timeline() { return {}; }
inline void reset_timeline() {}

class ScopedSpan {
 public:
  ScopedSpan(SpanKind, const char*, std::uint64_t = 0, std::uint64_t = 0) {}
  void set_flow(std::uint64_t) {}
  void set_args(std::uint64_t, std::uint64_t) {}
  bool active() const { return false; }
};

#endif  // MBD_OBS_PROFILER

}  // namespace mbd::obs
