// Chrome trace-event exporter for timeline snapshots.
//
// Emits the JSON Object Format ({"traceEvents": [...]}) understood by
// chrome://tracing and https://ui.perfetto.dev: one *process* per rank
// (pid = rank + 1; unbound threads land in pid 0 "unbound"), one *thread*
// row per (rank, life), a complete ("X") event per span with microsecond
// ts/dur, and flow events ("s" at each CollPost, "f" at the matching
// CollWait/NbDrain) so the arrow from a collective's initiation to its
// completion is visible across the timeline. docs/observability.md shows
// the schema and a how-to.
#pragma once

#include <string>

#include "mbd/obs/profiler.hpp"

namespace mbd::obs {

/// Serialize `snap` as Chrome trace-event JSON.
std::string chrome_trace_json(const TimelineSnapshot& snap);

/// Write chrome_trace_json(snap) to `path`. Throws mbd::Error on I/O error.
void write_chrome_trace(const std::string& path, const TimelineSnapshot& snap);

}  // namespace mbd::obs
