// Overlap analysis over recorded timelines.
//
// The paper's Fig. 8 question — how much communication hides behind
// backprop compute — becomes measurable once real runs are profiled: in a
// single-threaded rank, every nanosecond spent inside a communication span
// (CollPost, CollWait, NbDrain, the blocking collectives recorded as
// CollWait) is *exposed* communication, and overlap shows up as those spans
// shrinking when the schedule switches from ReduceMode::Blocking to
// Overlapped while the wire traffic stays byte-identical. The measured
// hidden fraction is therefore
//
//   hidden = 1 − exposed_comm(overlapped) / exposed_comm(blocking)
//
// evaluated on the critical rank (the one with the most exposed
// communication), directly comparable to the replay-predicted fraction
// (costmodel::replay_trace with inflight_transfer) and the analytic bound
// min(f·comm, f·compute)/comm with f = 2/3.
#pragma once

#include <vector>

#include "mbd/obs/profiler.hpp"

namespace mbd::obs {

/// Wall-time decomposition of one rank's timeline.
struct RankActivity {
  int rank = -1;
  double comm_seconds = 0.0;     ///< CollPost + CollWait + NbDrain
  double compute_seconds = 0.0;  ///< Gemm + Im2col (Pack nests inside Gemm)
  double span_seconds = 0.0;     ///< last span end − first span start
};

/// Per-rank activity extracted from a snapshot (unbound threads skipped;
/// a rank's threads are merged). Sorted by rank.
std::vector<RankActivity> rank_activity(const TimelineSnapshot& snap);

/// Exposed communication of the critical rank: max over ranks of
/// comm_seconds. Returns 0 when the snapshot holds no bound threads.
double critical_comm_seconds(const TimelineSnapshot& snap);

/// Measured hidden fraction between two runs of identical traffic, clamped
/// to [0, 1]: 1 − critical_comm(overlapped)/critical_comm(blocking).
/// Returns 0 when the blocking run recorded no communication.
double measured_hidden_fraction(const TimelineSnapshot& blocking,
                                const TimelineSnapshot& overlapped);

}  // namespace mbd::obs
