// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms, snapshot-able to JSON. Replaces the ad-hoc one-shot loggers
// (e.g. the MBD_GEMM_LOG_SHAPES stderr printer) with records that land in
// every bench's --json sink (bench/common.cpp appends a
// {"bench", "case": "metric:<name>", "value": ...} record per metric).
//
// Metrics are not a hot-path facility: every mutation takes one mutex and a
// map lookup. Instrument per-call code through the timeline profiler
// (mbd/obs/profiler.hpp) instead; use metrics for occurrence counts, shapes,
// and configuration facts that should survive into machine-readable output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mbd::obs {

/// Power-of-two bucket histogram: bucket i counts observations in
/// [2^i, 2^(i+1)) with bucket 0 catching everything below 2 and the last
/// bucket everything at or above 2^(kBuckets-1).
struct HistogramSnapshot {
  static constexpr std::size_t kBuckets = 32;
  std::uint64_t count = 0;
  double sum = 0.0;
  std::uint64_t buckets[kBuckets] = {};

  /// The q-quantile (q in [0, 1]) estimated by linear interpolation inside
  /// the bucket holding the q·count-th observation (bucket 0 spans [0, 2),
  /// bucket i ≥ 1 spans [2^i, 2^(i+1))). Exact to within one bucket's
  /// resolution — plenty for latency tails, where buckets are ~2× apart.
  /// Returns 0 for an empty histogram.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p99() const { return quantile(0.99); }
};

/// One named metric in a snapshot. `value` is the counter value, the gauge
/// value, or the histogram sum; histograms additionally carry `hist`.
struct MetricValue {
  enum class Kind { Counter, Gauge, Histogram };
  std::string name;
  Kind kind = Kind::Counter;
  double value = 0.0;
  HistogramSnapshot hist;
};

class Metrics {
 public:
  /// The process-wide registry.
  static Metrics& instance();

  void counter_add(const std::string& name, double v = 1.0);
  void gauge_set(const std::string& name, double v);
  void hist_observe(const std::string& name, double v);

  /// All metrics, sorted by name (stable across runs).
  std::vector<MetricValue> snapshot() const;
  /// Serialize the snapshot as a JSON array of
  /// {"name", "kind", "value"[, "count", "buckets"]} objects.
  std::string to_json() const;
  void reset();

 private:
  Metrics() = default;
  struct Impl;
  Impl& impl() const;
};

}  // namespace mbd::obs
