#include "mbd/obs/chrome_trace.hpp"

#include <cstdio>
#include <map>
#include <sstream>

#include "mbd/support/check.hpp"

namespace mbd::obs {

namespace {

// pid 0 holds unbound threads; rank r is process r + 1 so every rank gets
// its own process row as the acceptance schema requires.
int pid_of(int rank) { return rank < 0 ? 0 : rank + 1; }

void common_fields(std::ostringstream& os, double ts_us, int pid, int tid) {
  char ts[32];
  std::snprintf(ts, sizeof ts, "%.3f", ts_us);
  os << "\"ts\": " << ts << ", \"pid\": " << pid << ", \"tid\": " << tid;
}

}  // namespace

std::string chrome_trace_json(const TimelineSnapshot& snap) {
  // Rebase timestamps to the earliest span so ts stays small and readable.
  std::uint64_t t_min = ~0ULL;
  for (const auto& t : snap.threads)
    for (const auto& s : t.spans) t_min = std::min(t_min, s.t0_ns);
  if (t_min == ~0ULL) t_min = 0;
  const auto us = [t_min](std::uint64_t ns) {
    return static_cast<double>(ns - t_min) * 1e-3;
  };

  // A flow arrow needs exactly one "s" (at the CollPost) and one "f" (at the
  // completing CollWait/NbDrain — the last span echoing the id).
  struct FlowEnds {
    const Span* post = nullptr;
    const Span* finish = nullptr;
    int post_pid = 0, post_tid = 0, finish_pid = 0, finish_tid = 0;
  };
  std::map<std::uint64_t, FlowEnds> flows;

  std::ostringstream os;
  os << "{\"traceEvents\": [";
  bool first = true;
  const auto emit = [&](const std::string& ev) {
    os << (first ? "\n  " : ",\n  ") << ev;
    first = false;
  };

  std::map<int, bool> process_named;
  int tid = 0;
  for (const auto& t : snap.threads) {
    ++tid;  // tids start at 1; unique across the snapshot
    const int pid = pid_of(t.rank);
    if (!process_named[pid]) {
      process_named[pid] = true;
      std::ostringstream m;
      m << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " << pid
        << ", \"args\": {\"name\": \""
        << (t.rank < 0 ? std::string("unbound")
                       : "rank " + std::to_string(t.rank))
        << "\"}}";
      emit(m.str());
    }
    {
      std::ostringstream m;
      m << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": " << pid
        << ", \"tid\": " << tid << ", \"args\": {\"name\": \""
        << (t.rank < 0 ? "thread " + std::to_string(t.life)
                       : "rank " + std::to_string(t.rank) + " life " +
                             std::to_string(t.life))
        << "\"}}";
      emit(m.str());
    }
    for (const auto& s : t.spans) {
      std::ostringstream e;
      e << "{\"name\": \"" << span_kind_name(s.kind) << ":" << s.label
        << "\", \"cat\": \"" << span_kind_name(s.kind) << "\", \"ph\": \"X\", ";
      common_fields(e, us(s.t0_ns), pid, tid);
      char dur[32];
      std::snprintf(dur, sizeof dur, "%.3f",
                    static_cast<double>(s.t1_ns - s.t0_ns) * 1e-3);
      e << ", \"dur\": " << dur << ", \"args\": {\"seq\": " << s.seq;
      if (s.flow != 0) e << ", \"flow\": " << s.flow;
      if (s.arg0 != 0) e << ", \"arg0\": " << s.arg0;
      if (s.arg1 != 0) e << ", \"arg1\": " << s.arg1;
      e << "}}";
      emit(e.str());

      if (s.flow != 0) {
        FlowEnds& fe = flows[s.flow];
        if (s.kind == SpanKind::CollPost) {
          fe.post = &s;
          fe.post_pid = pid;
          fe.post_tid = tid;
        } else if (s.kind == SpanKind::CollWait ||
                   s.kind == SpanKind::NbDrain) {
          // Later spans overwrite: the completing drain wins.
          fe.finish = &s;
          fe.finish_pid = pid;
          fe.finish_tid = tid;
        }
      }
    }
  }

  for (const auto& [id, fe] : flows) {
    if (fe.post == nullptr || fe.finish == nullptr) continue;
    {
      std::ostringstream e;
      e << "{\"name\": \"coll\", \"cat\": \"flow\", \"ph\": \"s\", \"id\": "
        << id << ", ";
      common_fields(e, us(fe.post->t1_ns), fe.post_pid, fe.post_tid);
      e << "}";
      emit(e.str());
    }
    {
      std::ostringstream e;
      e << "{\"name\": \"coll\", \"cat\": \"flow\", \"ph\": \"f\", \"bp\": "
           "\"e\", \"id\": "
        << id << ", ";
      common_fields(e, us(fe.finish->t0_ns), fe.finish_pid, fe.finish_tid);
      e << "}";
      emit(e.str());
    }
  }

  os << "\n]}\n";
  return os.str();
}

void write_chrome_trace(const std::string& path,
                        const TimelineSnapshot& snap) {
  const std::string json = chrome_trace_json(snap);
  std::FILE* f = std::fopen(path.c_str(), "w");
  MBD_CHECK_MSG(f != nullptr, "cannot write chrome trace to " << path);
  const std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  MBD_CHECK_MSG(n == json.size(), "short write to " << path);
}

}  // namespace mbd::obs
