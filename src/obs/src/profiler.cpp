#include "mbd/obs/profiler.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

namespace mbd::obs {

const char* span_kind_name(SpanKind k) {
  switch (k) {
    case SpanKind::Gemm: return "gemm";
    case SpanKind::Pack: return "pack";
    case SpanKind::Im2col: return "im2col";
    case SpanKind::CollPost: return "coll_post";
    case SpanKind::CollWait: return "coll_wait";
    case SpanKind::NbDrain: return "nb_drain";
    case SpanKind::Checkpoint: return "checkpoint";
    case SpanKind::FaultRetry: return "fault_retry";
    case SpanKind::Promotion: return "promotion";
    case SpanKind::StageFwd: return "stage_fwd";
    case SpanKind::StageBwd: return "stage_bwd";
    case SpanKind::Serve: return "serve";
    case SpanKind::kCount: break;
  }
  return "unknown";
}

double TimelineSnapshot::total_seconds(SpanKind kind) const {
  std::uint64_t ns = 0;
  for (const auto& t : threads)
    for (const auto& s : t.spans)
      if (s.kind == kind) ns += s.t1_ns - s.t0_ns;
  return static_cast<double>(ns) * 1e-9;
}

#if MBD_OBS_PROFILER

namespace {

// One thread's buffer. Owned by the registry (so it survives thread exit for
// the snapshot); appended to only by the owning thread.
struct ThreadLog {
  int rank = -1;
  int life = 0;
  std::uint64_t seq = 0;       // per-thread span sequence
  std::uint64_t flow_seq = 0;  // per-thread flow-id counter
  std::vector<Span> spans;
};

struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadLog>> logs;
  std::map<int, int> lives;  // rank -> number of threads bound so far
  int unbound_life = 0;      // registration counter for never-bound threads
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: outlives exiting threads
  return *r;
}

std::atomic<bool> g_enabled{[] {
  return std::getenv("MBD_PROFILE") != nullptr;  // NOLINT(concurrency-mt-unsafe)
}()};

ThreadLog& local_log() {
  thread_local ThreadLog* log = [] {
    auto owned = std::make_unique<ThreadLog>();
    ThreadLog* p = owned.get();
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    p->life = r.unbound_life++;
    r.logs.push_back(std::move(owned));
    return p;
  }();
  return *log;
}

}  // namespace

bool profiling_enabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

void enable_profiling(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

void bind_thread(int rank) {
  if (!profiling_enabled()) return;
  ThreadLog& log = local_log();
  log.rank = rank;
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  log.life = r.lives[rank]++;
}

std::uint64_t next_flow_id() {
  if (!profiling_enabled()) return 0;
  ThreadLog& log = local_log();
  if (log.rank < 0) return 0;
  // (rank+1) in the high bits keeps ids unique across ranks; the low bits
  // count this thread's flows — both deterministic run to run.
  return (static_cast<std::uint64_t>(log.rank + 1) << 32) | ++log.flow_seq;
}

void record_span(SpanKind kind, const char* label, std::uint64_t t0_ns,
                 std::uint64_t t1_ns, std::uint64_t flow, std::uint64_t arg0,
                 std::uint64_t arg1) {
  if (!profiling_enabled()) return;
  ThreadLog& log = local_log();
  log.spans.push_back(
      {kind, label, log.seq++, flow, t0_ns, t1_ns, arg0, arg1});
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

TimelineSnapshot snapshot_timeline() {
  TimelineSnapshot snap;
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  snap.threads.reserve(r.logs.size());
  for (const auto& log : r.logs) {
    if (log->spans.empty()) continue;
    ThreadTimeline t;
    t.rank = log->rank;
    t.life = log->life;
    t.spans = log->spans;
    snap.threads.push_back(std::move(t));
  }
  // (rank, life) is the deterministic identity; unbound threads (-1) sort
  // first in registration order.
  std::sort(snap.threads.begin(), snap.threads.end(),
            [](const ThreadTimeline& a, const ThreadTimeline& b) {
              if (a.rank != b.rank) return a.rank < b.rank;
              return a.life < b.life;
            });
  return snap;
}

void reset_timeline() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  for (auto& log : r.logs) {
    log->spans.clear();
    log->seq = 0;
    log->flow_seq = 0;
  }
  r.lives.clear();
  // Live bound threads keep their rank but would collide on life after the
  // lives map reset; every binder (World::run) re-binds at thread entry, so
  // stale logs are simply left with their old identity and empty buffers.
}

#endif  // MBD_OBS_PROFILER

}  // namespace mbd::obs
