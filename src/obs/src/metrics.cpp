#include "mbd/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <mutex>
#include <sstream>

namespace mbd::obs {

namespace {

std::size_t bucket_of(double v) {
  if (!(v >= 2.0)) return 0;  // also catches NaN and negatives
  const auto b = static_cast<std::size_t>(std::log2(v));
  return std::min(b, HistogramSnapshot::kBuckets - 1);
}

struct Hist {
  std::uint64_t count = 0;
  double sum = 0.0;
  std::uint64_t buckets[HistogramSnapshot::kBuckets] = {};
};

// JSON string escape for metric names (quotes/backslashes/control chars).
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  // The (1-based) rank of the requested observation under the convention
  // that quantile(0) is the first and quantile(1) the last.
  const double rank = 1.0 + q * static_cast<double>(count - 1);
  std::uint64_t below = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const auto hi_rank = static_cast<double>(below + buckets[b]);
    if (rank <= hi_rank) {
      // Interpolate linearly within the bucket's value range.
      const double lo = b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b));
      const double hi = std::ldexp(1.0, static_cast<int>(b) + 1);
      const double frac =
          (rank - static_cast<double>(below)) / static_cast<double>(buckets[b]);
      return lo + frac * (hi - lo);
    }
    below += buckets[b];
  }
  // Unreachable when the bucket counts sum to `count`; be safe anyway.
  return std::ldexp(1.0, static_cast<int>(kBuckets));
}

struct Metrics::Impl {
  mutable std::mutex mu;
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Hist> hists;
};

Metrics& Metrics::instance() {
  static Metrics* m = new Metrics;  // leaked: usable from atexit handlers
  return *m;
}

Metrics::Impl& Metrics::impl() const {
  static Impl* i = new Impl;
  return *i;
}

void Metrics::counter_add(const std::string& name, double v) {
  Impl& i = impl();
  const std::lock_guard<std::mutex> lock(i.mu);
  i.counters[name] += v;
}

void Metrics::gauge_set(const std::string& name, double v) {
  Impl& i = impl();
  const std::lock_guard<std::mutex> lock(i.mu);
  i.gauges[name] = v;
}

void Metrics::hist_observe(const std::string& name, double v) {
  Impl& i = impl();
  const std::lock_guard<std::mutex> lock(i.mu);
  Hist& h = i.hists[name];
  ++h.count;
  h.sum += v;
  ++h.buckets[bucket_of(v)];
}

std::vector<MetricValue> Metrics::snapshot() const {
  const Impl& i = impl();
  std::vector<MetricValue> out;
  const std::lock_guard<std::mutex> lock(i.mu);
  for (const auto& [name, v] : i.counters)
    out.push_back({name, MetricValue::Kind::Counter, v, {}});
  for (const auto& [name, v] : i.gauges)
    out.push_back({name, MetricValue::Kind::Gauge, v, {}});
  for (const auto& [name, h] : i.hists) {
    MetricValue m;
    m.name = name;
    m.kind = MetricValue::Kind::Histogram;
    m.value = h.sum;
    m.hist.count = h.count;
    m.hist.sum = h.sum;
    std::copy(std::begin(h.buckets), std::end(h.buckets),
              std::begin(m.hist.buckets));
    out.push_back(std::move(m));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricValue& a, const MetricValue& b) {
              return a.name < b.name;
            });
  return out;
}

std::string Metrics::to_json() const {
  const auto snap = snapshot();
  std::ostringstream os;
  os << "[";
  for (std::size_t idx = 0; idx < snap.size(); ++idx) {
    const MetricValue& m = snap[idx];
    const char* kind = m.kind == MetricValue::Kind::Counter   ? "counter"
                       : m.kind == MetricValue::Kind::Gauge   ? "gauge"
                                                              : "histogram";
    os << (idx == 0 ? "" : ",") << "\n  {\"name\": \"" << escape(m.name)
       << "\", \"kind\": \"" << kind << "\", \"value\": " << m.value;
    if (m.kind == MetricValue::Kind::Histogram) {
      os << ", \"count\": " << m.hist.count << ", \"buckets\": [";
      // Trailing zero buckets are elided to keep records compact.
      std::size_t last = HistogramSnapshot::kBuckets;
      while (last > 0 && m.hist.buckets[last - 1] == 0) --last;
      for (std::size_t b = 0; b < last; ++b)
        os << (b == 0 ? "" : ", ") << m.hist.buckets[b];
      os << "]";
    }
    os << "}";
  }
  os << "\n]\n";
  return os.str();
}

void Metrics::reset() {
  Impl& i = impl();
  const std::lock_guard<std::mutex> lock(i.mu);
  i.counters.clear();
  i.gauges.clear();
  i.hists.clear();
}

}  // namespace mbd::obs
