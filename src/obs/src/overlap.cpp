#include "mbd/obs/overlap.hpp"

#include <algorithm>
#include <map>

namespace mbd::obs {

namespace {

bool is_comm(SpanKind k) {
  return k == SpanKind::CollPost || k == SpanKind::CollWait ||
         k == SpanKind::NbDrain;
}

// Pack spans nest inside the enclosing Gemm span, so only the outer kinds
// count toward compute (no double counting).
bool is_compute(SpanKind k) {
  return k == SpanKind::Gemm || k == SpanKind::Im2col;
}

}  // namespace

std::vector<RankActivity> rank_activity(const TimelineSnapshot& snap) {
  std::map<int, RankActivity> by_rank;
  for (const auto& t : snap.threads) {
    if (t.rank < 0 || t.spans.empty()) continue;
    RankActivity& ra = by_rank[t.rank];
    ra.rank = t.rank;
    std::uint64_t lo = ~0ULL, hi = 0;
    for (const auto& s : t.spans) {
      const double sec = static_cast<double>(s.t1_ns - s.t0_ns) * 1e-9;
      if (is_comm(s.kind)) ra.comm_seconds += sec;
      if (is_compute(s.kind)) ra.compute_seconds += sec;
      lo = std::min(lo, s.t0_ns);
      hi = std::max(hi, s.t1_ns);
    }
    ra.span_seconds += static_cast<double>(hi - lo) * 1e-9;
  }
  std::vector<RankActivity> out;
  out.reserve(by_rank.size());
  for (auto& [rank, ra] : by_rank) out.push_back(ra);
  return out;
}

double critical_comm_seconds(const TimelineSnapshot& snap) {
  double mx = 0.0;
  for (const auto& ra : rank_activity(snap))
    mx = std::max(mx, ra.comm_seconds);
  return mx;
}

double measured_hidden_fraction(const TimelineSnapshot& blocking,
                                const TimelineSnapshot& overlapped) {
  const double cb = critical_comm_seconds(blocking);
  if (cb <= 0.0) return 0.0;
  const double co = critical_comm_seconds(overlapped);
  return std::clamp(1.0 - co / cb, 0.0, 1.0);
}

}  // namespace mbd::obs
